// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its table/figure through the
// shared Lab (results are cached across benchmarks, so the grid of
// (workload, scheme, threshold) simulations runs once per process) and
// prints the rows the paper reports. Headline numbers are also exported
// as benchmark metrics.
//
// Environment knobs:
//
//	REPRO_BENCH_WINDOW_MS  simulated window per run (default 64 = one full
//	                       refresh window, the paper's metric window)
//	REPRO_BENCH_WORKLOADS  "all" (default: 18 SPEC + 16 mixes) or "spec"
//	REPRO_BENCH_PAR        concurrent simulations (default 0 = one per
//	                       core; 1 = serial). Results are identical at any
//	                       setting — only wall-clock changes.
//	REPRO_BENCH_JSON       path to write headline metrics as JSON (used by
//	                       `make bench-json`, which runs TestBenchJSON)
//
// The same tables are available interactively via cmd/figures. A quick
// benchmark configuration for contributors is `make bench-quick`
// (REPRO_BENCH_WINDOW_MS=4 REPRO_BENCH_WORKLOADS=spec).
package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/cellcache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracker"
)

var (
	benchLab     *Lab
	benchLabOnce sync.Once
	printedOnce  sync.Map
)

// benchOptions reads the REPRO_BENCH_* environment into LabOptions.
func benchOptions() LabOptions {
	windowMS := 64
	if v := os.Getenv("REPRO_BENCH_WINDOW_MS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			windowMS = n
		}
	}
	workloads := AllWorkloads()
	if os.Getenv("REPRO_BENCH_WORKLOADS") == "spec" {
		workloads = SPECWorkloads()
	}
	parallel := 0
	if v := os.Getenv("REPRO_BENCH_PAR"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			parallel = n
		}
	}
	return LabOptions{
		Window:    dram.PS(windowMS) * dram.Millisecond,
		Workloads: workloads,
		Parallel:  parallel,
	}
}

func sharedLab() *Lab {
	benchLabOnce.Do(func() { benchLab = NewLab(benchOptions()) })
	return benchLab
}

// emit prints a regenerated table once per process.
func emit(name, table string) {
	if _, dup := printedOnce.LoadOrStore(name, true); !dup {
		fmt.Printf("\n%s\n", table)
	}
}

// labGmean computes the geometric-mean normalized IPC for a scheme cell
// across a lab's workloads.
func labGmean(l *Lab, scheme Scheme, trh int64) (float64, error) {
	var norms []float64
	for _, name := range l.opts.Workloads {
		r, err := l.Run(name, scheme, trh)
		if err != nil {
			return 0, err
		}
		norms = append(norms, r.NormIPC)
	}
	return stats.Geomean(norms), nil
}

// gmeanNormIPC extracts the geometric-mean normalized IPC for a scheme
// cell across the lab's workloads.
func gmeanNormIPC(b *testing.B, l *Lab, scheme Scheme, trh int64) float64 {
	b.Helper()
	gm, err := labGmean(l, scheme, trh)
	if err != nil {
		b.Fatal(err)
	}
	return gm
}

// --- Figures --------------------------------------------------------------

func BenchmarkFigure3RRSScaling(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure3", out)
	}
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeRRS, 1000))*100, "slowdown-rrs-1k-%")
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeRRS, 4000))*100, "slowdown-rrs-4k-%")
}

func BenchmarkFigure6Migrations(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure6", out)
	}
	var aqua, rrs float64
	for _, name := range l.opts.Workloads {
		a, err := l.Run(name, SchemeAquaMemMapped, 1000)
		if err != nil {
			b.Fatal(err)
		}
		r, err := l.Run(name, SchemeRRS, 1000)
		if err != nil {
			b.Fatal(err)
		}
		aqua += a.Result.MigrationsPer64ms
		rrs += r.Result.MigrationsPer64ms
	}
	n := float64(len(l.opts.Workloads))
	b.ReportMetric(aqua/n, "migr/64ms-aqua")
	b.ReportMetric(rrs/n, "migr/64ms-rrs")
}

func BenchmarkFigure7AquaPerformance(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure7", out)
	}
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeAquaSRAM, 1000))*100, "slowdown-aqua-%")
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeRRS, 1000))*100, "slowdown-rrs-%")
}

func BenchmarkFigure9MemoryMapped(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure9", out)
	}
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeAquaSRAM, 1000))*100, "slowdown-sram-%")
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeAquaMemMapped, 1000))*100, "slowdown-memmap-%")
}

func BenchmarkFigure10LookupBreakdown(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure10", out)
	}
	var bloom, dramFrac float64
	for _, name := range l.opts.Workloads {
		r, err := l.Run(name, SchemeAquaMemMapped, 1000)
		if err != nil {
			b.Fatal(err)
		}
		bd := sim.BreakdownOf(r.Result)
		bloom += bd.BloomFiltered
		dramFrac += bd.DRAM
	}
	n := float64(len(l.opts.Workloads))
	b.ReportMetric(bloom/n*100, "bloom-filtered-%")
	b.ReportMetric(dramFrac/n*100, "dram-lookups-%")
}

func BenchmarkFigure11Sensitivity(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure11", out)
	}
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeAquaMemMapped, 2000))*100, "slowdown-2k-%")
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeAquaMemMapped, 500))*100, "slowdown-500-%")
}

func BenchmarkFigure12AnalyticalModel(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Figure12()
	}
	emit("figure12", out)
}

func BenchmarkFigure2ThresholdTrend(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Figure2()
	}
	emit("figure2", out)
}

// --- Tables ----------------------------------------------------------------

func BenchmarkTable2Workloads(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Table2()
		if err != nil {
			b.Fatal(err)
		}
		emit("table2", out)
	}
}

func BenchmarkTable3QuarantineSize(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Table3()
	}
	emit("table3", out)
}

func BenchmarkTable4VictimRefresh(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Table4()
		if err != nil {
			b.Fatal(err)
		}
		emit("table4", out)
	}
}

func BenchmarkTable5CROW(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Table5()
	}
	emit("table5", out)
}

func BenchmarkTable6Comparison(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Table6()
		if err != nil {
			b.Fatal(err)
		}
		emit("table6", out)
	}
}

func BenchmarkTable7Storage(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Table7()
		out += "\n" + StorageReport()
	}
	emit("table7", out)
}

// --- Section VI-C: worst-case DoS bound -------------------------------------

func BenchmarkSection6CWorstCaseDoS(b *testing.B) {
	geom := BaselineGeometry()
	region := sim.VisibleRegion(sim.Config{})
	run := func(useAqua bool) dram.PS {
		rank := NewRank(geom, DDR4Timing())
		var mit mitigation.Mitigator = mitigation.None{}
		if useAqua {
			mit = core.New(rank, core.Config{TRH: 1000, Mode: core.ModeSRAM})
		}
		ctrl := memctrl.New(rank, mit, memctrl.Config{})
		s := attack.NewRotatingDoS(geom, region.VisibleRowsPerBank, 500, 200_000)
		c := cpu.New(0, s, cpu.Config{MLP: 4})
		for {
			at, ok := c.NextIssueTime()
			if !ok {
				break
			}
			c.Issue(at, ctrl.Submit)
		}
		return c.FinishTime()
	}
	var slowdown float64
	for i := 0; i < b.N; i++ {
		base := run(false)
		aqua := run(true)
		slowdown = float64(aqua) / float64(base)
	}
	b.ReportMetric(slowdown, "dos-slowdown-x")
	emit("section6c", fmt.Sprintf(
		"Section VI-C worst-case DoS: measured %.2fx (analytical bound 2.95x)", slowdown))
}

// --- Microbenchmarks on the core data structures ----------------------------

func BenchmarkAquaTranslateSRAM(b *testing.B) {
	rank := NewBaselineRank()
	eng := core.New(rank, core.Config{TRH: 1000, Mode: core.ModeSRAM})
	visible := eng.VisibleRowsPerBank()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Translate(dram.Row(i%visible), 0)
	}
}

func BenchmarkAquaTranslateMemMapped(b *testing.B) {
	rank := NewBaselineRank()
	eng := core.New(rank, core.Config{TRH: 1000, Mode: core.ModeMemMapped})
	visible := eng.VisibleRowsPerBank()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Translate(dram.Row(i%visible), 0)
	}
}

func BenchmarkControllerSubmit(b *testing.B) {
	rank := NewBaselineRank()
	eng := core.New(rank, core.Config{TRH: 1000, Mode: core.ModeMemMapped})
	ctrl := memctrl.New(rank, eng, memctrl.Config{})
	geom := rank.Geometry()
	at := dram.PS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = ctrl.Submit(geom.RowOf(i%16, i%100000), false, at)
	}
}

func BenchmarkSection5FSensitivity(b *testing.B) {
	l := sharedLab()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = l.SensitivityVF()
		if err != nil {
			b.Fatal(err)
		}
	}
	emit("section5f", out)
}

func BenchmarkSection5HPower(b *testing.B) {
	l := sharedLab()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = l.PowerReport()
		if err != nil {
			b.Fatal(err)
		}
	}
	emit("section5h", out)
}

// --- Machine-readable bench record (make bench-json) ------------------------

// BenchRecord is the headline-metric snapshot `make bench-json` writes to
// BENCH_<date>.json, recording the repo's performance trajectory PR over
// PR: paper metrics (slowdowns, migrations/64ms) plus grid wall-clock at
// -j 1 and -j N on the same grid.
type BenchRecord struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	HostCores  int    `json:"host_cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	WindowMS   int    `json:"window_ms"`
	Workloads  int    `json:"workloads"`
	GridCells  int    `json:"grid_cells"`
	Jobs       int    `json:"jobs"`

	WallSerialSec float64 `json:"wall_serial_sec"`
	// WallParallelSec is null on a 1-core host: the -j N pass is skipped
	// outright there (it would measure scheduler overhead, and at ~13s it
	// doubled bench-json's cost for a number SpeedupNote then disclaimed).
	WallParallelSec *float64 `json:"wall_parallel_sec"`
	// Speedup is wall_serial/wall_parallel — but only when the host has
	// cores to parallelize over. On a 1-core host the ratio measures
	// scheduler overhead, not the engine, so it is recorded as null with
	// SpeedupNote explaining why (a 0.90 "slowdown" recorded from a 1-core
	// CI host is what this guards against).
	Speedup     *float64 `json:"speedup"`
	SpeedupNote string   `json:"speedup_note,omitempty"`

	// WallFullSec is the wall-clock for one full 64ms-window cell (lbm
	// under AQUA memory-mapped, 4 cores) — the unit of work every figure
	// grid decomposes into, and the number the event-driven core is
	// budgeted against (< 1s; see `make bench-full`).
	WallFullSec float64 `json:"wall_full_sec"`

	// Cold vs warm wall-clock over the same grid against an on-disk
	// result cache: the cold pass simulates and populates the cache, the
	// warm pass replays it from disk. CacheHits is the warm pass's hit
	// count (one per grid cell when the cache is healthy).
	WallColdSec float64 `json:"wall_cold_sec"`
	WallWarmSec float64 `json:"wall_warm_sec"`
	CacheHits   int64   `json:"cache_hits"`

	// TraceCaptures/TraceReplays are the cold pass's stream-tier counters:
	// with trace replay on by default, each workload's core streams are
	// synthesized once (captures) and every later cell sharing them replays
	// the packed capture instead of regenerating. Replays of zero would
	// mean the tier is dark and wall_cold_sec is paying full synthesis.
	TraceCaptures int64 `json:"trace_captures"`
	TraceReplays  int64 `json:"trace_replays"`

	SlowdownAqua1KPct float64 `json:"slowdown_aqua_1k_pct"`
	SlowdownRRS1KPct  float64 `json:"slowdown_rrs_1k_pct"`
	MigrAquaPer64ms   float64 `json:"migrations_per_64ms_aqua"`
	MigrRRSPer64ms    float64 `json:"migrations_per_64ms_rrs"`

	// Micro holds the internal/perf hot-path microbenchmarks, keyed by
	// pipeline layer, so per-layer regressions are visible in the
	// trajectory even when grid wall-clock hides them.
	Micro map[string]MicroMetric `json:"micro"`
}

// MicroMetric is one microbenchmark sample in the bench record.
type MicroMetric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// runMicrobenches runs the internal/perf layer benchmarks through
// testing.Benchmark and collapses each into a MicroMetric.
func runMicrobenches() map[string]MicroMetric {
	benches := map[string]func(*testing.B){
		"dram_access":          perf.BenchAccess,
		"ctrl_submit":          perf.BenchSubmit,
		"ctrl_submitbatch":     perf.BenchSubmitBatch,
		"tracker_act":          perf.BenchTrackerACT,
		"tracker_act_hot":      perf.BenchTrackerACTHot,
		"tracker_act_cold":     perf.BenchTrackerACTCold,
		"mitigation_translate": perf.BenchTranslate,
		"workload_stream":      perf.BenchGeneratorStream,
		"trace_replay":         perf.BenchTraceReplay,
		"event_pop":            perf.BenchEventPop,
		"issue_loop_8c":        perf.BenchIssueLoop8,
		"issue_loop_16c":       perf.BenchIssueLoop16,
	}
	out := make(map[string]MicroMetric, len(benches))
	for name, fn := range benches {
		r := testing.Benchmark(fn)
		out[name] = MicroMetric{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	return out
}

// TestBenchJSON records headline metrics to the file named by
// REPRO_BENCH_JSON (it skips when unset, so plain `go test` never pays
// for it). It runs the same grid serially and at -j N, checks the
// rendered output is byte-identical, and writes wall-clock for both, so
// the recorded speedup is backed by a determinism check. Window,
// workload set, and N follow the REPRO_BENCH_* knobs.
func TestBenchJSON(t *testing.T) {
	path := os.Getenv("REPRO_BENCH_JSON")
	if path == "" {
		t.Skip("set REPRO_BENCH_JSON=<path> (or run `make bench-json`) to record metrics")
	}
	opts := benchOptions()
	jobs := opts.Parallel
	if jobs <= 1 {
		jobs = 4 // the acceptance configuration; override with REPRO_BENCH_PAR
	}
	grid := PaperGrid()

	serialOpts, parallelOpts := opts, opts
	serialOpts.Parallel = 1
	parallelOpts.Parallel = jobs
	serialLab := NewLab(serialOpts)

	// On a 1-core host the -j N pass measures goroutine scheduling, not
	// the engine, and the record disclaims it anyway — skip the timing run
	// entirely and record wall_parallel_sec as null. Every downstream
	// consumer (figures, metrics) reads from the serial lab instead.
	oneCore := runtime.NumCPU() == 1
	var parallelLab *Lab
	var wallParallel time.Duration
	if !oneCore {
		parallelLab = NewLab(parallelOpts)
		start := time.Now()
		if err := parallelLab.Precompute(grid...); err != nil {
			t.Fatal(err)
		}
		wallParallel = time.Since(start)
	}
	metricsLab := parallelLab
	if oneCore {
		metricsLab = serialLab
	}

	start := time.Now()
	if err := serialLab.Precompute(grid...); err != nil {
		t.Fatal(err)
	}
	wallSerial := time.Since(start)

	// Cold vs warm against the on-disk result cache: the cold pass runs
	// the same grid into an empty cache directory, the warm pass replays
	// it through a fresh Lab and a fresh Store over the same directory —
	// so every hit crosses the disk tier, not process memory.
	cacheDir := t.TempDir()
	coldLab := NewLab(parallelOpts)
	coldStore, err := cellcache.New(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	coldLab.AttachCache(coldStore)
	start = time.Now()
	if err := coldLab.Precompute(grid...); err != nil {
		t.Fatal(err)
	}
	wallCold := time.Since(start)
	coldStats := coldLab.CellStats()

	warmLab := NewLab(parallelOpts)
	warmStore, err := cellcache.New(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	warmLab.AttachCache(warmStore)
	start = time.Now()
	if err := warmLab.Precompute(grid...); err != nil {
		t.Fatal(err)
	}
	wallWarm := time.Since(start)
	warmStats := warmLab.CellStats()
	if warmStats.CacheHits == 0 {
		t.Errorf("warm pass took no cache hits (stats %+v)", warmStats)
	}
	if warmStats.Simulated != 0 {
		t.Errorf("warm pass simulated %d cells, want 0 (stats %+v)", warmStats.Simulated, warmStats)
	}
	// The acceptance bar: a warm grid costs at most a quarter of a cold
	// one. Only meaningful when the cold pass did real work.
	if wallCold > 500*time.Millisecond && wallWarm > wallCold/4 {
		t.Errorf("warm grid took %s, want <= 25%% of cold %s", wallWarm, wallCold)
	}

	// The speedup only counts if both engines emit the same bytes.
	serialOut, err := serialLab.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if !oneCore {
		parallelOut, err := parallelLab.Figure7()
		if err != nil {
			t.Fatal(err)
		}
		if serialOut != parallelOut {
			t.Fatalf("parallel output diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				serialOut, parallelOut)
		}
	}
	warmOut, err := warmLab.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if warmOut != serialOut {
		t.Fatalf("warm-cache output diverged from serial:\n--- serial ---\n%s\n--- warm ---\n%s",
			serialOut, warmOut)
	}

	aquaGM, err := labGmean(metricsLab, SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rrsGM, err := labGmean(metricsLab, SchemeRRS, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var migrAqua, migrRRS float64
	for _, name := range opts.Workloads {
		a, err := metricsLab.Run(name, SchemeAquaMemMapped, 1000)
		if err != nil {
			t.Fatal(err)
		}
		r, err := metricsLab.Run(name, SchemeRRS, 1000)
		if err != nil {
			t.Fatal(err)
		}
		migrAqua += a.Result.MigrationsPer64ms
		migrRRS += r.Result.MigrationsPer64ms
	}
	n := float64(len(opts.Workloads))

	wallFull := runFullWindowCell(t)

	rec := BenchRecord{
		Date:              time.Now().Format("2006-01-02"),
		GoVersion:         runtime.Version(),
		HostCores:         runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		WindowMS:          int(opts.Window / dram.Millisecond),
		Workloads:         len(opts.Workloads),
		GridCells:         len(grid),
		Jobs:              jobs,
		WallSerialSec:     wallSerial.Seconds(),
		WallFullSec:       wallFull.Seconds(),
		WallColdSec:       wallCold.Seconds(),
		WallWarmSec:       wallWarm.Seconds(),
		CacheHits:         warmStats.CacheHits,
		TraceCaptures:     coldStats.TraceCaptures,
		TraceReplays:      coldStats.TraceReplays,
		SlowdownAqua1KPct: (1 - aquaGM) * 100,
		SlowdownRRS1KPct:  (1 - rrsGM) * 100,
		MigrAquaPer64ms:   migrAqua / n,
		MigrRRSPer64ms:    migrRRS / n,
		Micro:             runMicrobenches(),
	}
	if oneCore {
		// A serial/parallel ratio measured with no cores to spare is
		// scheduler noise; don't record it as an engine property (and the
		// pass was skipped above, so there is nothing to record).
		rec.SpeedupNote = "host has 1 core; serial/parallel ratio not meaningful, speedup omitted"
		fmt.Fprintf(os.Stderr, "bench-json: warning: %s\n", rec.SpeedupNote)
	} else {
		wp := wallParallel.Seconds()
		rec.WallParallelSec = &wp
		speedup := wallSerial.Seconds() / wp
		rec.Speedup = &speedup
	}
	// A 2x speedup at -j 4 is the acceptance bar, but it is only
	// physically reachable with cores to spare; hosts without them record
	// their (flat) numbers without failing.
	if rec.HostCores >= 4 && rec.Speedup != nil && *rec.Speedup < 2 {
		t.Errorf("grid speedup at -j %d is %.2fx on %d cores, want >= 2x",
			jobs, *rec.Speedup, rec.HostCores)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	speedupStr, parStr := "n/a", "skipped"
	if rec.Speedup != nil {
		speedupStr = fmt.Sprintf("%.2fx", *rec.Speedup)
	}
	if rec.WallParallelSec != nil {
		parStr = fmt.Sprintf("%.1fs", *rec.WallParallelSec)
	}
	t.Logf("recorded %s: serial %.1fs, -j %d %s (%s), full cell %.2fs, cache cold %.1fs warm %.2fs (%d hits)",
		path, rec.WallSerialSec, jobs, parStr, speedupStr,
		rec.WallFullSec, rec.WallColdSec, rec.WallWarmSec, rec.CacheHits)
}

// BenchmarkAblationProactiveDrain quantifies the Section IV-D note: with
// background draining, a quarantine whose destination slot holds a stale
// entry pays ~1.37us on the critical path instead of ~2.74us.
func BenchmarkAblationProactiveDrain(b *testing.B) {
	geom := dram.Geometry{Banks: 4, RowsPerBank: 512, RowBytes: 1024, LineBytes: 64}
	measure := func(drain bool) dram.PS {
		rank := dram.NewRank(geom, DDR4Timing())
		eng := core.New(rank, core.Config{
			TRH: 40, Mode: core.ModeSRAM, RQARows: 8,
			Tracker:        tracker.NewExact(geom, 20),
			ProactiveDrain: drain,
		})
		at := dram.PS(0)
		hammerOnce := func(row dram.Row) dram.PS {
			var busy dram.PS
			for i := 0; i < 20; i++ {
				tr := eng.Translate(row, at)
				busy += eng.OnActivate(tr.PhysRow, at)
				at += 50 * dram.Nanosecond
			}
			return busy
		}
		// Epoch 0: fill all 8 slots.
		for i := 0; i < 8; i++ {
			hammerOnce(geom.RowOf(i%4, 1+i/4))
		}
		eng.OnEpoch(64 * dram.Millisecond)
		at = 65 * dram.Millisecond
		if drain {
			for eng.OnIdle(at) > 0 {
				at += 10 * dram.Microsecond
			}
		}
		// Epoch 1: the next quarantines reuse stale slots; without the
		// drain each pays an eviction on the critical path.
		var busy dram.PS
		for i := 0; i < 4; i++ {
			busy += hammerOnce(geom.RowOf(i, 100+i))
		}
		return busy
	}
	var with, without dram.PS
	for i := 0; i < b.N; i++ {
		without = measure(false)
		with = measure(true)
	}
	b.ReportMetric(float64(without)/1e3, "critical-ns-no-drain")
	b.ReportMetric(float64(with)/1e3, "critical-ns-drained")
	emit("ablation-drain", fmt.Sprintf(
		"Ablation (Section IV-D): critical-path busy for 4 quarantines over stale slots:\n"+
			"  without proactive drain: %.2f us\n  with proactive drain:    %.2f us",
		float64(without)/1e6, float64(with)/1e6))
}
