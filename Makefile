# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets, so a green `make lint test` locally matches a green build.

GO ?= go

.PHONY: all build lint test race fuzz bench bench-quick bench-json bench-smoke bench-full fault-smoke cache-smoke serve-smoke trace-smoke

all: build lint test

build:
	$(GO) build ./...

# lint = the standard vet pass plus aqualint, the repo's own analyzer
# suite: the per-package determinism and numeric-comparison rules plus
# the module-wide detertaint / keycoverage / guardedby analyzers (see
# cmd/aqualint -list). The lint framework's own tests run under -race
# because module analyses share a loader across goroutine-using tests.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/aqualint ./...
	$(GO) test -race ./internal/lint/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke against the AQUA engine's structural invariants.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCore -fuzztime=10s ./internal/core

# Full benchmark sweep (64ms window, 34 workloads). Knobs:
#   REPRO_BENCH_WINDOW_MS=4 REPRO_BENCH_WORKLOADS=spec  quick mode
#   REPRO_BENCH_PAR=N                                   parallelism (0 = cores)
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -timeout 0 .

# Quick benchmark for contributors: 4ms window, 18 SPEC workloads — same
# harness, minutes instead of hours.
bench-quick:
	REPRO_BENCH_WINDOW_MS=4 REPRO_BENCH_WORKLOADS=spec $(GO) test -run='^$$' -bench=. -benchtime=1x -timeout 0 .

# Record headline metrics (slowdowns, migrations/64ms, grid wall-clock at
# -j 1 vs -j 4, full-cell wall-clock) to BENCH_<date>.json. Defaults to
# the quick configuration; unset the REPRO_BENCH_* overrides for a
# full-window record. On a 1-core host the speedup is recorded as null
# (the serial/parallel ratio is scheduler noise there) with a warning.
bench-json:
	REPRO_BENCH_WINDOW_MS=$${REPRO_BENCH_WINDOW_MS:-4} \
	REPRO_BENCH_WORKLOADS=$${REPRO_BENCH_WORKLOADS:-spec} \
	REPRO_BENCH_JSON=BENCH_$$(date +%F).json \
	$(GO) test -run='^TestBenchJSON$$' -timeout 0 .

# CI smoke over the hot-path measurement layer: one iteration of each
# internal/perf microbenchmark plus the zero-allocation budget tests.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/perf
	$(GO) test -run='ZeroAlloc' ./internal/perf ./internal/dram

# Full-cell wall-clock budget: one complete 64ms refresh-window cell (the
# unit every figure grid decomposes into) must finish inside the budget
# (default 750ms; REPRO_BENCH_FULL_BUDGET_MS to adjust per host — CI uses 2000ms).
bench-full:
	REPRO_BENCH_FULL=1 $(GO) test -run='^TestFullWindowCellBudget$$' -count=1 -v -timeout 600s .

# Result-cache smoke (see DESIGN.md "Result cache & incremental
# recomputation"): the bench-quick grid configuration runs twice against
# a fresh cache directory. The second run must take cache hits, finish
# faster, and emit byte-identical figures.
cache-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	echo "--- cold run into $$dir"; \
	t0=$$(date +%s%N); \
	$(GO) run ./cmd/figures -workloads spec -window 4 -figure 7 -cache-dir "$$dir" \
		>"$$dir/cold.out" 2>"$$dir/cold.err" || { cat "$$dir/cold.err"; echo "FAIL: cold run"; exit 1; }; \
	t1=$$(date +%s%N); \
	echo "--- warm run from the same directory"; \
	$(GO) run ./cmd/figures -workloads spec -window 4 -figure 7 -cache-dir "$$dir" \
		>"$$dir/warm.out" 2>"$$dir/warm.err" || { cat "$$dir/warm.err"; echo "FAIL: warm run"; exit 1; }; \
	t2=$$(date +%s%N); \
	cold_ms=$$(( (t1 - t0) / 1000000 )); warm_ms=$$(( (t2 - t1) / 1000000 )); \
	echo "cold $${cold_ms}ms, warm $${warm_ms}ms"; \
	grep -o 'cell cache: [0-9]* hits.*' "$$dir/warm.err"; \
	grep -q 'cell cache: [1-9][0-9]* hits' "$$dir/warm.err" || { echo "FAIL: warm run took no cache hits"; exit 1; }; \
	cmp -s "$$dir/cold.out" "$$dir/warm.out" || { echo "FAIL: warm output differs from cold"; exit 1; }; \
	test "$$warm_ms" -lt "$$cold_ms" || { echo "FAIL: warm run not faster ($${warm_ms}ms vs $${cold_ms}ms)"; exit 1; }; \
	echo "cache-smoke OK"

# Trace capture/replay smoke (see DESIGN.md "Trace capture & replay"):
# the bench-quick grid runs once with the stream-replay tier on (the
# default) and once with -no-trace-replay (full synthesis every cell).
# The figures must be byte-identical — the replay-vs-generate
# equivalence gate — and the replay run must report capture/replay
# activity on stderr while the disabled run reports none.
trace-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	echo "--- replay on (capture once, replay every later cell)"; \
	$(GO) run ./cmd/figures -workloads spec -window 4 -figure 7 \
		>"$$dir/replay.out" 2>"$$dir/replay.err" || { cat "$$dir/replay.err"; echo "FAIL: replay run"; exit 1; }; \
	echo "--- replay off (-no-trace-replay, synthesis in every cell)"; \
	$(GO) run ./cmd/figures -workloads spec -window 4 -figure 7 -no-trace-replay \
		>"$$dir/gen.out" 2>"$$dir/gen.err" || { cat "$$dir/gen.err"; echo "FAIL: generation run"; exit 1; }; \
	grep -o 'trace tier: .*' "$$dir/replay.err"; \
	grep -q 'trace tier: [1-9][0-9]* streams captured, [1-9][0-9]* replayed' "$$dir/replay.err" \
		|| { echo "FAIL: replay run recorded no captures/replays"; exit 1; }; \
	if grep -q 'trace tier:' "$$dir/gen.err"; then echo "FAIL: -no-trace-replay still used the trace tier"; exit 1; fi; \
	cmp -s "$$dir/replay.out" "$$dir/gen.out" || { echo "FAIL: replayed figures differ from generated"; exit 1; }; \
	echo "trace-smoke OK"

# Experiment-service smoke (see DESIGN.md "Service architecture &
# failure domains"): two end-to-end acceptance scenarios against real
# aquaserve processes.
#   overload — concurrent duplicate golden-grid jobs against a
#     deliberately tiny queue: submissions shed with 429 + Retry-After,
#     clients retry with seeded backoff, and every completed job's output
#     is byte-identical to testdata/lab_golden.txt.
#   chaos — server A SIGKILLs itself mid-grid holding a compute lease;
#     server B on the same cache/checkpoint directories must finish the
#     duplicate job byte-identically via lease expiry + resume.
serve-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) build -o "$$dir/aquaserve" ./cmd/aquaserve || exit 1; \
	$(GO) build -o "$$dir/aquaload" ./cmd/aquaload || exit 1; \
	echo "--- overload: duplicate grids vs a full queue (429 + seeded-backoff retry)"; \
	"$$dir/aquaload" -mode load -serve-bin "$$dir/aquaserve" -golden testdata/lab_golden.txt \
		-n 40 -c 16 -expect-shed || { echo "FAIL: load smoke"; exit 1; }; \
	echo "--- chaos: SIGKILL a worker mid-grid, recover via lease expiry + resume"; \
	"$$dir/aquaload" -mode chaos -serve-bin "$$dir/aquaserve" -golden testdata/lab_golden.txt \
		|| { echo "FAIL: chaos smoke"; exit 1; }; \
	echo "serve-smoke OK"

# Fault-matrix smoke (see DESIGN.md "Failure model & graceful
# degradation"): an injected panicking cell must not abort the run — the
# process finishes, names the cell in the failure summary, and exits 1 —
# and an injected RQA overflow must degrade to the victim-refresh
# fallback and be reported, not crash.
fault-smoke:
	@echo "--- panic cell: run completes, reports the cell, exits non-zero"
	@out=$$($(GO) run ./cmd/figures -workloads spec -window 1 -j 4 -figure 7 \
		-faults 'xz/rrs/1000=panic@once:0' 2>&1); code=$$?; \
	echo "$$out" | tail -6; \
	test $$code -ne 0 || { echo "FAIL: expected non-zero exit"; exit 1; }; \
	echo "$$out" | grep -q 'Failure summary' || { echo "FAIL: no failure summary"; exit 1; }; \
	echo "$$out" | grep -q 'xz/rrs/1000' || { echo "FAIL: failed cell not named"; exit 1; }
	@echo "--- rqa-overflow cell: run completes and reports the degraded mitigation"
	@out=$$($(GO) run ./cmd/aquasim -workload lbm -scheme aqua-memmapped -trh 125 -window 1 \
		-faults 'lbm/aqua-memmapped/125=rqa-overflow@p:1' 2>&1) || { echo "$$out"; echo "FAIL: aquasim exited non-zero"; exit 1; }; \
	echo "$$out" | grep 'faults injected'; \
	echo "$$out" | grep -q 'overflow fallbacks' || { echo "FAIL: overflow fallback not reported"; exit 1; }
	@echo "fault-smoke OK"
