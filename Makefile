# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets, so a green `make lint test` locally matches a green build.

GO ?= go

.PHONY: all build lint test race fuzz bench

all: build lint test

build:
	$(GO) build ./...

# lint = the standard vet pass plus aqualint, the repo's own analyzer
# suite (determinism and numeric-comparison rules; see cmd/aqualint).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/aqualint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke against the AQUA engine's structural invariants.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCore -fuzztime=10s ./internal/core

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .
