# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets, so a green `make lint test` locally matches a green build.

GO ?= go

.PHONY: all build lint test race fuzz bench bench-quick bench-json bench-smoke

all: build lint test

build:
	$(GO) build ./...

# lint = the standard vet pass plus aqualint, the repo's own analyzer
# suite (determinism and numeric-comparison rules; see cmd/aqualint).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/aqualint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke against the AQUA engine's structural invariants.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCore -fuzztime=10s ./internal/core

# Full benchmark sweep (64ms window, 34 workloads). Knobs:
#   REPRO_BENCH_WINDOW_MS=4 REPRO_BENCH_WORKLOADS=spec  quick mode
#   REPRO_BENCH_PAR=N                                   parallelism (0 = cores)
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -timeout 0 .

# Quick benchmark for contributors: 4ms window, 18 SPEC workloads — same
# harness, minutes instead of hours.
bench-quick:
	REPRO_BENCH_WINDOW_MS=4 REPRO_BENCH_WORKLOADS=spec $(GO) test -run='^$$' -bench=. -benchtime=1x -timeout 0 .

# Record headline metrics (slowdowns, migrations/64ms, grid wall-clock at
# -j 1 vs -j 4) to BENCH_<date>.json. Defaults to the quick configuration;
# unset the REPRO_BENCH_* overrides for a full-window record.
bench-json:
	REPRO_BENCH_WINDOW_MS=$${REPRO_BENCH_WINDOW_MS:-4} \
	REPRO_BENCH_WORKLOADS=$${REPRO_BENCH_WORKLOADS:-spec} \
	REPRO_BENCH_JSON=BENCH_$$(date +%F).json \
	$(GO) test -run='^TestBenchJSON$$' -timeout 0 .

# CI smoke over the hot-path measurement layer: one iteration of each
# internal/perf microbenchmark plus the zero-allocation budget tests.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/perf
	$(GO) test -run='ZeroAlloc' ./internal/perf ./internal/dram
