// Command figures regenerates the tables and figures of the AQUA paper's
// evaluation as text.
//
// Usage:
//
//	figures -all                     # everything (default)
//	figures -figure 7                # one figure (2,3,6,7,9,10,11,12)
//	figures -table 3                 # one table (2..7)
//	figures -workloads spec          # 18 SPEC workloads only (default all 34)
//	figures -window 16               # simulated window in ms (default 64)
//	figures -j 8                     # concurrent simulations (0 = all cores)
//
// Robustness (see DESIGN.md "Failure model & graceful degradation"):
//
//	figures -faults 'xz/rrs/1000=panic@once:0'   # deterministic fault injection
//	figures -timeout 10m                         # cancel the whole run after a deadline
//	figures -resume run.ckpt                     # checkpoint completed cells; resume after interrupt
//
// Incremental recomputation (see DESIGN.md "Result cache & incremental
// recomputation"):
//
//	figures -cache-dir ~/.cache/aqua             # persist finished cells; later runs serve them
//	figures -no-cache                            # force every cell to simulate
//
// Cached output is byte-identical to a cold run; hit/miss/dedup counts
// are reported on stderr at exit.
//
// A failing cell no longer aborts the run: every figure that doesn't
// depend on it still renders byte-identically, failed figures are listed
// in a summary table, and the exit status is 1.
//
// Profiling the simulator (see DESIGN.md "Performance model"):
//
//	figures -cpuprofile cpu.pb.gz    # pprof CPU profile of the run
//	figures -memprofile mem.pb.gz    # heap profile written at exit
//	figures -trace trace.out         # runtime execution trace
//
// Simulation-backed outputs share one result cache, so -all simulates each
// (workload, scheme, threshold) cell exactly once; with -j > 1 the grid
// fans out to a worker pool, and the emitted text is byte-identical to a
// serial run (results are collected in canonical cell order).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"repro"
	"repro/internal/cellcache"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	// Indirection so deferred cleanup (profiles, checkpoint close) runs
	// even when the process exits non-zero for failed cells.
	os.Exit(realMain())
}

func realMain() int {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	figure := flag.Int("figure", 0, "regenerate one figure (2,3,6,7,9,10,11,12)")
	table := flag.Int("table", 0, "regenerate one table (2..7)")
	section := flag.String("section", "", `regenerate one section ("5f" sensitivity, "5h" power)`)
	all := flag.Bool("all", false, "regenerate everything")
	workloads := flag.String("workloads", "all", `workload set: "all" (34) or "spec" (18)`)
	windowMS := flag.Int("window", 64, "simulated window per run in ms")
	seed := flag.Uint64("seed", 0, "experiment seed (0 = default)")
	par := flag.Int("j", 0, "concurrent simulations (0 = one per core, 1 = serial)")
	faultSpec := flag.String("faults", "", "fault-injection rules, e.g. 'xz/rrs/1000=panic@once:0;*/aqua-memmapped/*=ecc-flip@p:0.01'")
	timeout := flag.Duration("timeout", 0, "cancel the whole run after this wall-clock duration (0 = none)")
	resume := flag.String("resume", "", "checkpoint file: completed cells are persisted here and served on re-run")
	cache := flag.Bool("cache", true, "serve grid cells from the content-addressed result cache (in-memory; add -cache-dir to persist)")
	cacheDir := flag.String("cache-dir", "", "directory for the on-disk cache tier: completed cells persist here and warm future runs (implies -cache)")
	noCache := flag.Bool("no-cache", false, "disable the result cache entirely (overrides -cache and -cache-dir)")
	noTraceReplay := flag.Bool("no-trace-replay", false, "regenerate workload streams for every cell instead of replaying captured traces (byte-identical, slower; see make trace-smoke)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			log.Fatalf("trace: %v", err)
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	if *figure == 0 && *table == 0 && *section == "" {
		*all = true
	}

	rules, err := fault.ParseRules(*faultSpec)
	if err != nil {
		log.Fatalf("-faults: %v", err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := repro.LabOptions{
		Window:        dram.PS(*windowMS) * dram.Millisecond,
		Seed:          *seed,
		Parallel:      *par,
		Faults:        rules,
		Context:       ctx,
		NoTraceReplay: *noTraceReplay,
	}
	switch *workloads {
	case "all":
		opts.Workloads = repro.AllWorkloads()
	case "spec":
		opts.Workloads = repro.SPECWorkloads()
	default:
		log.Fatalf("unknown workload set %q", *workloads)
	}
	lab := repro.NewLab(opts)
	defer func() {
		if cs := lab.CellStats(); cs.TraceCaptures > 0 || cs.TraceReplays > 0 {
			fmt.Fprintf(os.Stderr, "[trace tier: %d streams captured, %d replayed (%d from disk)]\n",
				cs.TraceCaptures, cs.TraceReplays, cs.TraceDiskHits)
		}
	}()
	if !*noCache && (*cache || *cacheDir != "") {
		store, err := cellcache.New(*cacheDir)
		if err != nil {
			log.Fatalf("-cache-dir: %v", err)
		}
		lab.AttachCache(store)
		defer func() {
			if cs := lab.CellStats(); cs.Requests > 0 {
				fmt.Fprintf(os.Stderr, "[cell cache: %d hits, %d misses, %d deduped, %d simulated]\n",
					cs.CacheHits, cs.CacheMisses, cs.Deduped(), cs.Simulated)
			}
		}()
	}
	if *resume != "" {
		if err := lab.AttachCheckpoint(*resume); err != nil {
			log.Fatalf("-resume: %v", err)
		}
		defer func() {
			if hits := lab.CheckpointHits(); hits > 0 {
				fmt.Fprintf(os.Stderr, "[%d results served from checkpoint %s]\n", hits, *resume)
			}
			if err := lab.CloseCheckpoint(); err != nil {
				log.Printf("checkpoint: %v", err)
			}
		}()
	}

	type job struct {
		name string
		fn   func() (string, error)
	}
	static := func(s string) func() (string, error) {
		return func() (string, error) { return s, nil }
	}
	jobs := []job{
		{"table 1", static(repro.Table1())},
		{"figure 2", static(repro.Figure2())},
		{"table 2", lab.Table2},
		{"figure 3", lab.Figure3},
		{"table 3", static(repro.Table3())},
		{"table 4", lab.Table4},
		{"table 5", static(repro.Table5())},
		{"figure 6", lab.Figure6},
		{"figure 7", lab.Figure7},
		{"figure 9", lab.Figure9},
		{"figure 10", lab.Figure10},
		{"figure 11", lab.Figure11},
		{"figure 12", static(repro.Figure12())},
		{"table 6", lab.Table6},
		{"table 7", static(repro.Table7() + "\n" + repro.StorageReport())},
		{"section 5f", lab.SensitivityVF},
		{"section 5h", lab.PowerReport},
		{"section 6c", func() (string, error) { return lab.CoRunReport("gcc") }},
	}

	cancelled := func(err error) bool {
		return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	}

	if *all {
		// Warm the union grid once up front so the worker pool sees the
		// whole evaluation at full width, instead of draining per figure.
		// A failing cell is not fatal here: the figures that depend on it
		// will report it, and every other figure still renders.
		start := time.Now()
		if err := lab.Precompute(repro.PaperGrid()...); err != nil {
			if cancelled(err) {
				log.Printf("precompute: %v", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "[precompute: %v — continuing with healthy cells]\n", err)
		}
		if d := time.Since(start); d > time.Second {
			fmt.Fprintf(os.Stderr, "[grid precomputed in %s]\n\n", d.Round(time.Millisecond))
		}
	}

	want := func(j job) bool {
		if *all {
			return true
		}
		return (*figure != 0 && j.name == fmt.Sprintf("figure %d", *figure)) ||
			(*table != 0 && j.name == fmt.Sprintf("table %d", *table)) ||
			(*section != "" && j.name == "section "+*section)
	}

	type failure struct {
		name string
		err  error
	}
	var failures []failure
	ran := 0
	for _, j := range jobs {
		if !want(j) {
			continue
		}
		start := time.Now()
		out, err := j.fn()
		if err != nil {
			if cancelled(err) {
				log.Printf("%s: %v", j.name, err)
				return 1
			}
			// Emit the partial run: the failed figure is skipped, every
			// other output still renders from the healthy cells.
			failures = append(failures, failure{j.name, err})
			fmt.Fprintf(os.Stderr, "[%s FAILED: %v]\n\n", j.name, err)
			continue
		}
		fmt.Println(out)
		if d := time.Since(start); d > time.Second {
			fmt.Fprintf(os.Stderr, "[%s regenerated in %s]\n\n", j.name, d.Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 && len(failures) == 0 {
		log.Printf("nothing selected: figure %d / table %d / section %q not available", *figure, *table, *section)
		return 1
	}

	// Degraded cells that still completed (injected hardware faults the
	// scheme recovered from) are reported but don't fail the run.
	if faulted := lab.FaultedCells(); len(faulted) > 0 {
		t := stats.NewTable("Fault-injection summary: degraded cells (run completed)",
			"Workload", "Scheme", "T_RH", "Faults injected")
		for _, c := range faulted {
			t.AddRow(c.Workload, c.Scheme.String(), fmt.Sprintf("%d", c.TRH), fmt.Sprintf("%d", c.Injected))
		}
		fmt.Println(t.String())
	}

	if len(failures) > 0 {
		t := stats.NewTable("Failure summary: outputs lost to failed cells",
			"Output", "Cell", "Cause")
		for _, f := range failures {
			cell, cause := "-", f.err.Error()
			var ce *sim.CellError
			if errors.As(f.err, &ce) {
				cell = fmt.Sprintf("%s/%s/%d", ce.Workload, ce.Scheme, ce.TRH)
				cause = ce.Err.Error()
			}
			t.AddRow(f.name, cell, cause)
		}
		fmt.Println(t.String())
		log.Printf("%d of %d selected outputs failed", len(failures), ran+len(failures))
		return 1
	}
	return 0
}
