package main

// convert and stats subcommands. Both auto-detect the input container
// (text, v1 binary, v2 blocked) from its leading bytes and are written
// against io.Writer so tests drive them directly.

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dram"
	"repro/internal/trace"
)

// detectFile sniffs the trace container format of a file.
func detectFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	prefix := make([]byte, 4)
	n, err := io.ReadFull(f, prefix)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return "", err
	}
	return trace.DetectFormat(prefix[:n]), nil
}

// runConvert converts a trace between the text, v1, and v2 containers.
// The v1→v2 path streams block-by-block with bounded memory; narrowing a
// multi-core v2 trace to a single-stream format takes -core.
func runConvert(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	to := fs.String("to", "", "output format: text, v1, v2 (required)")
	out := fs.String("o", "", "output file (required)")
	core := fs.Int("core", 0, "source core when narrowing a v2 trace to text or v1")
	block := fs.Int("block", trace.DefaultBlockTarget, "records per block for v2 output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" || *to == "" {
		return errors.New("convert: -o and -to are required")
	}
	if fs.NArg() != 1 {
		return errors.New("convert: need exactly one input trace")
	}
	in := fs.Arg(0)
	from, err := detectFile(in)
	if err != nil {
		return err
	}

	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	var written int64
	switch *to {
	case "text", "v1":
		written, err = convertSingle(dst, in, from, *to, *core)
	case "v2":
		written, err = convertToV2(dst, in, from, *core, *block)
	default:
		err = fmt.Errorf("convert: unknown output format %q", *to)
	}
	if err != nil {
		dst.Close()
		os.Remove(*out)
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "converted %s (%s) -> %s (%s): %d records\n", in, from, *out, *to, written)
	return nil
}

// loadSingle reads one record stream out of any container: the whole
// trace for text and v1, one core for v2.
func loadSingle(path, format string, core int) ([]trace.Record, error) {
	switch format {
	case trace.FormatText:
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadText(f)
	case trace.FormatV1:
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return nil, err
		}
		var recs []trace.Record
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			recs = append(recs, rec)
		}
		return recs, nil
	case trace.FormatV2:
		m, err := trace.OpenFile(path)
		if err != nil {
			return nil, err
		}
		defer m.Close()
		if core < 0 || core >= m.Header().Cores {
			return nil, fmt.Errorf("convert: -core %d out of range [0,%d)", core, m.Header().Cores)
		}
		recs := make([]trace.Record, 0, m.CoreRecords(core))
		s := m.Stream(core)
		for {
			req, ok := s.Next()
			if !ok {
				break
			}
			recs = append(recs, trace.Record{Row: req.Row, Write: req.Write, GapInstr: req.GapInstr})
		}
		if err := s.Err(); err != nil {
			return nil, err
		}
		return recs, nil
	}
	return nil, fmt.Errorf("convert: unknown input format %q", format)
}

// convertSingle writes one record stream as text or v1.
func convertSingle(dst io.Writer, in, from, to string, core int) (int64, error) {
	recs, err := loadSingle(in, from, core)
	if err != nil {
		return 0, err
	}
	if to == "text" {
		return int64(len(recs)), trace.WriteText(dst, recs)
	}
	w, err := trace.NewWriter(dst, int64(len(recs)))
	if err != nil {
		return 0, err
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			return 0, err
		}
	}
	return int64(len(recs)), w.Close()
}

// convertToV2 writes any input as a v2 blocked trace. A v1 input streams
// with bounded memory; a v2 input is re-blocked core by core from the
// mapping (so a huge trace never fully decodes into memory either).
func convertToV2(dst io.Writer, in, from string, core, block int) (int64, error) {
	switch from {
	case trace.FormatV1:
		f, err := os.Open(in)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return 0, err
		}
		if err := trace.CopyV1ToV2(dst, r, block); err != nil {
			return 0, err
		}
		return r.Header().Records, nil
	case trace.FormatText:
		recs, err := loadSingle(in, from, core)
		if err != nil {
			return 0, err
		}
		p := &trace.Packed{}
		for _, rec := range recs {
			p.Append(rec)
		}
		return int64(len(recs)), trace.WriteSet(dst, &trace.Set{Cores: []*trace.Packed{p}}, block)
	case trace.FormatV2:
		m, err := trace.OpenFile(in)
		if err != nil {
			return 0, err
		}
		defer m.Close()
		hdr := m.Header()
		bw, err := trace.NewBlockWriter(dst, hdr.Cores, block, hdr.Records)
		if err != nil {
			return 0, err
		}
		for c := 0; c < hdr.Cores; c++ {
			s := m.Stream(c)
			for {
				req, ok := s.Next()
				if !ok {
					break
				}
				rec := trace.Record{Row: req.Row, Write: req.Write, GapInstr: req.GapInstr}
				if err := bw.Append(c, rec); err != nil {
					return 0, err
				}
			}
			if err := s.Err(); err != nil {
				return 0, err
			}
		}
		return hdr.Records, bw.Close()
	}
	return 0, fmt.Errorf("convert: unknown input format %q", from)
}

// coreStats aggregates one record stream.
type coreStats struct {
	records, writes, instr int64
	rows                   map[dram.Row]struct{}
}

func (c *coreStats) add(rec trace.Record) {
	if c.rows == nil {
		c.rows = make(map[dram.Row]struct{})
	}
	c.records++
	if rec.Write {
		c.writes++
	}
	c.instr += rec.GapInstr
	c.rows[rec.Row] = struct{}{}
}

// runStats prints container-level and per-stream statistics for a trace
// in any format.
func runStats(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("stats: need exactly one trace file")
	}
	path := fs.Arg(0)
	format, err := detectFile(path)
	if err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := st.Size()

	perRec := func(records int64) string {
		if records == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f B/record", float64(size)/float64(records))
	}

	if format == trace.FormatV2 {
		m, err := trace.OpenFile(path)
		if err != nil {
			return err
		}
		defer m.Close()
		hdr := m.Header()
		fmt.Fprintf(stdout, "format        %s\n", format)
		fmt.Fprintf(stdout, "cores         %d\n", hdr.Cores)
		fmt.Fprintf(stdout, "block target  %d\n", hdr.BlockTarget)
		fmt.Fprintf(stdout, "records       %d\n", hdr.Records)
		fmt.Fprintf(stdout, "file bytes    %d (%s)\n", size, perRec(hdr.Records))
		for c := 0; c < hdr.Cores; c++ {
			var cs coreStats
			s := m.Stream(c)
			for {
				req, ok := s.Next()
				if !ok {
					break
				}
				cs.add(trace.Record{Row: req.Row, Write: req.Write, GapInstr: req.GapInstr})
			}
			if err := s.Err(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "core %-3d      records %d, blocks %d, writes %d, instructions %d, distinct rows %d\n",
				c, cs.records, m.CoreBlocks(c), cs.writes, cs.instr, len(cs.rows))
		}
		return nil
	}

	recs, err := loadSingle(path, format, 0)
	if err != nil {
		return err
	}
	var cs coreStats
	for _, rec := range recs {
		cs.add(rec)
	}
	fmt.Fprintf(stdout, "format        %s\n", format)
	fmt.Fprintf(stdout, "records       %d\n", cs.records)
	fmt.Fprintf(stdout, "file bytes    %d (%s)\n", size, perRec(cs.records))
	fmt.Fprintf(stdout, "writes        %d\n", cs.writes)
	fmt.Fprintf(stdout, "instructions  %d\n", cs.instr)
	fmt.Fprintf(stdout, "distinct rows %d\n", len(cs.rows))
	return nil
}
