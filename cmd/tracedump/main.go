// Command tracedump records, inspects, and replays memory request traces
// (the reproducible-artifact format of internal/trace).
//
// Usage:
//
//	tracedump record -workload gcc -n 100000 -o gcc.trace   # synthesize + save
//	tracedump record -attack double-sided -o atk.trace      # attack pattern
//	tracedump info gcc.trace                                # header + stats
//	tracedump dump gcc.trace | head                         # text format
//	tracedump replay gcc.trace -scheme aqua-memmapped       # run through a scheme
//	tracedump convert -to v2 -o gcc.aqt2 gcc.trace          # text/v1/v2 conversion
//	tracedump stats gcc.aqt2                                # per-core statistics
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/attack"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracedump: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: tracedump record|info|dump|replay ...")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "dump":
		dump(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "convert":
		if err := runConvert(os.Args[2:], os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "stats":
		if err := runStats(os.Args[2:], os.Stdout); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wl := fs.String("workload", "", "workload name to synthesize")
	atk := fs.String("attack", "", "attack pattern (single-sided, double-sided, adaptive, dos)")
	n := fs.Int64("n", 100_000, "records to capture")
	core := fs.Int("core", 0, "core index (rate-copy hot-row placement)")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		log.Fatal("record: -o is required")
	}

	region := sim.VisibleRegion(sim.Config{})
	geom := region.Geom
	var stream cpu.Stream
	switch {
	case *wl != "" && *atk != "":
		log.Fatal("record: -workload and -attack are mutually exclusive")
	case *wl != "":
		spec, ok := workload.ByName(*wl)
		if !ok {
			log.Fatalf("unknown workload %q", *wl)
		}
		gen := workload.NewGenerator(spec, region, *core, *seed, workload.Params{})
		stream = gen.Stream(*n, *seed)
	case *atk != "":
		switch *atk {
		case "single-sided":
			stream = attack.SingleSided(geom, geom.RowOf(0, 777), region.VisibleRowsPerBank, *n/2)
		case "double-sided":
			stream = attack.DoubleSided(geom, geom.RowOf(3, 5000), *n/2)
		case "adaptive":
			stream = attack.AdaptiveHammer(geom, geom.RowOf(0, 42), region.VisibleRowsPerBank, *n/17)
		case "dos":
			stream = attack.NewRotatingDoS(geom, region.VisibleRowsPerBank, 500, *n)
		default:
			log.Fatalf("unknown attack %q", *atk)
		}
	default:
		log.Fatal("record: need -workload or -attack")
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	written, err := trace.Capture(f, stream, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d records to %s\n", written, *out)
}

func open(path string) *trace.Reader {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	r, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func info(args []string) {
	if len(args) < 1 {
		log.Fatal("info: need a trace file")
	}
	r := open(args[0])
	fmt.Printf("records: %d\n", r.Header().Records)
	geom := repro.BaselineGeometry()
	rows := make(map[dram.Row]int64)
	banks := make(map[int]int64)
	var writes, instr int64
	for {
		rec, err := r.Read()
		if err != nil {
			break
		}
		rows[rec.Row]++
		if geom.Contains(rec.Row) {
			banks[geom.BankOf(rec.Row)]++
		}
		if rec.Write {
			writes++
		}
		instr += rec.GapInstr
	}
	if r.Err() != nil {
		log.Fatal(r.Err())
	}
	var hottest dram.Row
	var hot int64
	for row, n := range rows {
		if n > hot || (n == hot && row < hottest) {
			hottest, hot = row, n
		}
	}
	fmt.Printf("distinct rows: %d\n", len(rows))
	fmt.Printf("banks touched: %d\n", len(banks))
	fmt.Printf("writes: %d\n", writes)
	fmt.Printf("instructions: %d\n", instr)
	fmt.Printf("hottest row: %d (%d accesses)\n", hottest, hot)
}

func dump(args []string) {
	if len(args) < 1 {
		log.Fatal("dump: need a trace file")
	}
	r := open(args[0])
	var recs []trace.Record
	for {
		rec, err := r.Read()
		if err != nil {
			break
		}
		recs = append(recs, rec)
	}
	if r.Err() != nil {
		log.Fatal(r.Err())
	}
	if err := trace.WriteText(os.Stdout, recs); err != nil {
		log.Fatal(err)
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	scheme := fs.String("scheme", "aqua-memmapped", "mitigation scheme")
	trh := fs.Int64("trh", 1000, "Rowhammer threshold")
	fs.Parse(args)
	if fs.NArg() < 1 {
		log.Fatal("replay: need a trace file")
	}
	r := open(fs.Arg(0))

	rank := repro.NewBaselineRank()
	var mit mitigation.Mitigator
	switch *scheme {
	case "baseline":
		mit = mitigation.None{}
	case "aqua-sram":
		mit = repro.NewAqua(rank, repro.AquaConfig{TRH: *trh, Mode: repro.ModeSRAM})
	case "aqua-memmapped":
		mit = repro.NewAqua(rank, repro.AquaConfig{TRH: *trh, Mode: repro.ModeMemMapped})
	case "rrs":
		mit = repro.NewRRS(rank, repro.RRSConfig{TRH: *trh})
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}
	mon := repro.NewSecurityMonitor(rank, int(*trh))
	ctrl := memctrl.New(rank, mit, memctrl.Config{})
	c := cpu.New(0, r, cpu.Config{})
	for {
		at, ok := c.NextIssueTime()
		if !ok {
			break
		}
		c.Issue(at, ctrl.Submit)
	}
	if r.Err() != nil {
		log.Fatal(r.Err())
	}
	st := mit.Stats()
	fmt.Printf("scheme          %s\n", mit.Name())
	fmt.Printf("simulated time  %.3f ms\n", float64(c.FinishTime())/1e9)
	fmt.Printf("instructions    %d\n", c.InstrRetired())
	fmt.Printf("IPC             %.3f\n", c.IPC(c.FinishTime()))
	fmt.Printf("mitigations     %d (migrations %d)\n", st.Mitigations, st.RowMigrations)
	if mon.Violated() {
		v := mon.Violations()[0]
		fmt.Printf("VIOLATED        row %d reached %d ACTs\n", v.Row, v.Count)
	} else {
		fmt.Printf("invariant held\n")
	}
}
