package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/trace"
)

// writeTextTrace writes a small text trace and returns its path and the
// records it holds.
func writeTextTrace(t *testing.T, dir string) (string, []trace.Record) {
	t.Helper()
	recs := []trace.Record{
		{Row: 100, GapInstr: 5},
		{Row: 7, Write: true, GapInstr: 0},
		{Row: 100, GapInstr: 123456},
		{Row: 4096, Write: true, GapInstr: 1},
	}
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, recs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, recs
}

// convert runs runConvert and returns its stdout.
func convert(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := runConvert(args, &out); err != nil {
		t.Fatalf("convert %v: %v", args, err)
	}
	return out.String()
}

// TestConvertChain drives text -> v1 -> v2 -> text and checks the final
// text is byte-identical to the normalized original (lossless round
// trip through every container).
func TestConvertChain(t *testing.T) {
	dir := t.TempDir()
	txt, recs := writeTextTrace(t, dir)
	v1 := filepath.Join(dir, "a.trace")
	v2 := filepath.Join(dir, "a.aqt2")
	txt2 := filepath.Join(dir, "out.txt")

	convert(t, "-to", "v1", "-o", v1, txt)
	convert(t, "-to", "v2", "-o", v2, v1)
	out := convert(t, "-to", "text", "-o", txt2, v2)
	if !strings.Contains(out, "4 records") {
		t.Fatalf("convert output %q does not report 4 records", out)
	}

	var want bytes.Buffer
	if err := trace.WriteText(&want, recs); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(txt2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("round trip diverged:\ngot:\n%s\nwant:\n%s", got, want.Bytes())
	}

	// Each intermediate file must carry the right magic.
	for path, want := range map[string]string{
		txt: trace.FormatText, v1: trace.FormatV1, v2: trace.FormatV2,
	} {
		got, err := detectFile(path)
		if err != nil || got != want {
			t.Fatalf("detectFile(%s) = %q, %v; want %q", path, got, err, want)
		}
	}
}

// TestConvertV2Core narrows a multi-core v2 trace to one core's stream.
func TestConvertV2Core(t *testing.T) {
	dir := t.TempDir()
	set := &trace.Set{Cores: []*trace.Packed{{}, {}}}
	set.Cores[0].Append(trace.Record{Row: 1, GapInstr: 1})
	set.Cores[1].Append(trace.Record{Row: 2, GapInstr: 2})
	set.Cores[1].Append(trace.Record{Row: 3, Write: true, GapInstr: 3})
	v2 := filepath.Join(dir, "mc.aqt2")
	if err := trace.WriteSetFile(v2, set, 0); err != nil {
		t.Fatal(err)
	}

	txt := filepath.Join(dir, "core1.txt")
	convert(t, "-to", "text", "-core", "1", "-o", txt, v2)
	data, err := os.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadText(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Row != 2 || recs[1].Row != 3 || !recs[1].Write {
		t.Fatalf("core 1 narrowed to %+v", recs)
	}

	var out bytes.Buffer
	if err := runConvert([]string{"-to", "text", "-core", "5", "-o", filepath.Join(dir, "x.txt"), v2}, &out); err == nil {
		t.Fatal("out-of-range -core did not fail")
	}
}

// TestConvertReblocksV2 rewrites a v2 trace with a different block
// target and checks the records survive.
func TestConvertReblocksV2(t *testing.T) {
	dir := t.TempDir()
	set := &trace.Set{Cores: []*trace.Packed{{}}}
	for i := 0; i < 100; i++ {
		set.Cores[0].Append(trace.Record{Row: dram.Row(i), GapInstr: int64(i)})
	}
	src := filepath.Join(dir, "src.aqt2")
	if err := trace.WriteSetFile(src, set, 0); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "dst.aqt2")
	convert(t, "-to", "v2", "-block", "7", "-o", dst, src)

	m, err := trace.OpenFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Header().Records != 100 || m.Header().BlockTarget != 7 {
		t.Fatalf("re-blocked header %+v", m.Header())
	}
	if blocks := m.CoreBlocks(0); blocks < 100/7 {
		t.Fatalf("re-blocked into %d blocks, want >= %d", blocks, 100/7)
	}
	s := m.Stream(0)
	for i := 0; i < 100; i++ {
		req, ok := s.Next()
		if !ok || req.Row != dram.Row(i) || req.GapInstr != int64(i) {
			t.Fatalf("record %d: %+v ok=%t", i, req, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("extra records after re-block")
	}
}

// TestStats checks the stats subcommand on v2 and v1 containers.
func TestStats(t *testing.T) {
	dir := t.TempDir()
	set := &trace.Set{Cores: []*trace.Packed{{}, {}}}
	set.Cores[0].Append(trace.Record{Row: 1, GapInstr: 10})
	set.Cores[0].Append(trace.Record{Row: 1, Write: true, GapInstr: 20})
	set.Cores[1].Append(trace.Record{Row: 9, GapInstr: 5})
	v2 := filepath.Join(dir, "s.aqt2")
	if err := trace.WriteSetFile(v2, set, 0); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runStats([]string{v2}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"format        aqua-trace-v2",
		"cores         2",
		"records       3",
		"records 2, blocks 1, writes 1, instructions 30, distinct rows 1",
		"records 1, blocks 1, writes 0, instructions 5, distinct rows 1",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stats output missing %q:\n%s", want, out.String())
		}
	}

	txt, _ := writeTextTrace(t, dir)
	v1 := filepath.Join(dir, "s.trace")
	convert(t, "-to", "v1", "-o", v1, txt)
	out.Reset()
	if err := runStats([]string{v1}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"format        aqua-trace-v1",
		"records       4",
		"writes        2",
		"instructions  123462",
		"distinct rows 3",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stats output missing %q:\n%s", want, out.String())
		}
	}
}
