// Command attacksim runs Rowhammer attack patterns against a chosen
// mitigation and reports the security outcome: the peak sliding-window
// activation count of any physical row versus the Rowhammer threshold, and
// whether any row crossed it.
//
// Usage:
//
//	attacksim -attack double-sided -scheme baseline       # succeeds (flips)
//	attacksim -attack double-sided -scheme aqua-memmapped # defeated
//	attacksim -attack half-double  -scheme victim-refresh # Half-Double wins
//	attacksim -attack dos          -scheme aqua-sram      # bounded slowdown
//	attacksim -attack adaptive     -scheme rrs
//
// Attacks: single-sided, double-sided, many-sided, half-double, adaptive,
// dos, table-hammer.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/flipmodel"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/rrs"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/vrefresh"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("attacksim: ")

	attackName := flag.String("attack", "double-sided", "attack pattern")
	schemeName := flag.String("scheme", "aqua-memmapped", "mitigation scheme")
	trh := flag.Int64("trh", 1000, "Rowhammer threshold T_RH")
	acts := flag.Int64("acts", 0, "aggressor activations (default 4*T_RH)")
	flag.Parse()

	if *acts == 0 {
		*acts = 4 * *trh
	}

	geom := repro.BaselineGeometry()
	rank := repro.NewRank(geom, repro.DDR4Timing())
	// The charge model flips at 2*T_RH combined disturbance: T_RH is
	// defined per aggressor row (Section VI), and a double-sided victim
	// receives two rows' contributions.
	fm := flipmodel.New(geom, 2**trh, rank.Timing().TREFW)
	fm.Attach(rank)
	mon := security.NewMonitor(int(*trh), rank.Timing().TREFW)
	mon.Attach(rank)

	var mit mitigation.Mitigator
	var aqua *core.Engine
	switch *schemeName {
	case "baseline":
		mit = mitigation.None{}
	case "aqua-sram":
		aqua = core.New(rank, core.Config{TRH: *trh, Mode: core.ModeSRAM})
		mit = aqua
	case "aqua-memmapped":
		aqua = core.New(rank, core.Config{TRH: *trh, Mode: core.ModeMemMapped})
		mit = aqua
	case "rrs":
		mit = rrs.New(rank, rrs.Config{TRH: *trh})
	case "victim-refresh":
		mit = vrefresh.New(rank, vrefresh.Config{
			TRH:       *trh,
			OnRefresh: func(r dram.Row, at dram.PS) { fm.RowOpened(r, at) },
		})
	case "blockhammer":
		mit = repro.NewBlockhammer(rank, repro.BlockhammerConfig{TRH: *trh})
	default:
		log.Fatalf("unknown scheme %q", *schemeName)
	}

	region := sim.VisibleRegion(sim.Config{})
	victim := geom.RowOf(3, 5000)
	var stream cpu.Stream
	switch *attackName {
	case "single-sided":
		stream = attack.SingleSided(geom, geom.RowOf(0, 777), region.VisibleRowsPerBank, *acts)
	case "double-sided":
		stream = attack.DoubleSided(geom, victim, *acts)
	case "many-sided":
		stream = attack.ManySided(geom, victim, 4, *acts)
	case "half-double":
		stream = attack.HalfDouble(geom, victim, *acts**trh/500)
	case "adaptive":
		stream = attack.AdaptiveHammer(geom, geom.RowOf(0, 42), region.VisibleRowsPerBank, *acts)
	case "dos":
		stream = attack.NewRotatingDoS(geom, region.VisibleRowsPerBank, *trh/2, 16**acts)
	case "table-hammer":
		if aqua == nil {
			log.Fatal("table-hammer targets AQUA's memory-mapped tables; use -scheme aqua-memmapped")
		}
		setup := []dram.Row{geom.RowOf(0, 0), geom.RowOf(0, 1), geom.RowOf(0, 16), geom.RowOf(0, 17)}
		var sweep []dram.Row
		for i := 2; i < 16; i++ {
			sweep = append(sweep, geom.RowOf(0, i))
		}
		stream = attack.TableHammer(geom, aqua.VisibleRowsPerBank(), setup, sweep, *trh/2, *acts/8)
	default:
		log.Fatalf("unknown attack %q", *attackName)
	}

	ctrl := memctrl.New(rank, mit, memctrl.Config{})
	c := cpu.New(0, stream, cpu.Config{MLP: 1})
	for {
		at, ok := c.NextIssueTime()
		if !ok {
			break
		}
		c.Issue(at, ctrl.Submit)
	}

	fmt.Printf("attack          %s vs %s (T_RH=%d)\n", *attackName, mit.Name(), *trh)
	fmt.Printf("attack time     %.2f ms simulated\n", float64(c.FinishTime())/1e9)
	fmt.Printf("total ACTs      %d\n", mon.TotalACTs())
	row, peak := mon.MaxWindowCount()
	fmt.Printf("peak row ACTs   %d (row %d) in any 64ms window\n", peak, row)
	st := mit.Stats()
	fmt.Printf("mitigations     %d (migrations %d, victim refreshes %d)\n",
		st.Mitigations, st.RowMigrations, st.VictimRefreshes)
	if fm.Flipped() {
		f := fm.Flips()[0]
		fmt.Printf("BIT FLIPS       %d (first: row %d, disturbance %d)\n",
			len(fm.Flips()), f.Victim, f.Disturbance)
	} else {
		fmt.Printf("bit flips       none (charge model)\n")
	}
	if mon.Violated() {
		v := mon.Violations()[0]
		fmt.Printf("VIOLATED        row %d reached %d ACTs >= T_RH\n", v.Row, v.Count)
	} else {
		fmt.Printf("invariant held  no physical row reached T_RH activations\n")
	}
}
