// Command aquaserve runs the crash-tolerant experiment farm as an HTTP
// service (see internal/farm and DESIGN.md "Service architecture &
// failure domains").
//
// Usage:
//
//	aquaserve -addr :8080                 # listen address (:0 = ephemeral)
//	aquaserve -id lab-a                   # server identity (job IDs, lease owners)
//	aquaserve -queue 8 -workers 2         # admission bound and worker pool
//	aquaserve -cell-parallel 1            # per-job cell parallelism (0 = all cores)
//	aquaserve -cache-dir /shared/cells    # shared content-addressed result store
//	aquaserve -ckpt-dir /shared/ckpt      # per-job-key checkpoints (crash handoff)
//	aquaserve -lease-ttl 30s              # compute-lease expiry (crash recovery bound)
//	aquaserve -deadline 10m               # default per-job deadline
//	aquaserve -drain-timeout 30s          # graceful-shutdown grace window
//	aquaserve -retry-after 2s             # backoff hint on shed (429) responses
//	aquaserve -seed 0x41515541            # root seed for backoff jitter + fault arms
//
// Chaos harness hooks (driven by cmd/aquaload):
//
//	aquaserve -faults '*/*/*=worker-kill@once:2'
//
// worker-kill arms SIGKILL this process at the matching cell-start
// ordinal — the hard-crash the lease/checkpoint machinery exists to
// survive. All other fault kinds pass through to the simulator.
//
// On startup the resolved listen address is printed to stdout as
// "aquaserve listening on http://<addr>" (ephemeral ports become
// concrete), which is what aquaload's process harness parses. SIGINT or
// SIGTERM begins a drain: /readyz flips to 503, queued jobs cancel,
// running jobs get the drain window, then everything hard-cancels.
// Completed cells are durable in the cache/checkpoints either way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/farm"
	"repro/internal/fault"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aquaserve: ")

	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address (:0 = ephemeral port)")
		id           = flag.String("id", "aquaserve", "server identity used in job IDs and lease owners")
		queue        = flag.Int("queue", 8, "admission queue bound (full queue sheds with 429)")
		workers      = flag.Int("workers", 2, "concurrent jobs")
		cellParallel = flag.Int("cell-parallel", 0, "per-job cell parallelism (0 = all cores)")
		cacheDir     = flag.String("cache-dir", "", "shared result-store directory (empty = in-memory)")
		ckptDir      = flag.String("ckpt-dir", "", "checkpoint directory for crash handoff (empty = off)")
		leaseTTL     = flag.Duration("lease-ttl", 30*time.Second, "compute-lease expiry")
		deadline     = flag.Duration("deadline", 10*time.Minute, "default per-job deadline")
		drainT       = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown grace window")
		retryAfter   = flag.Duration("retry-after", 2*time.Second, "Retry-After hint on shed responses")
		seed         = flag.Uint64("seed", 0x41515541, "root seed for backoff jitter and fault arms")
		faultSpec    = flag.String("faults", "", "fault rules (worker-kill arms crash this process; rest reach the simulator)")
	)
	flag.Parse()

	var rules *fault.Rules
	if *faultSpec != "" {
		var err error
		rules, err = fault.ParseRules(*faultSpec)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
	}

	srv, err := farm.New(farm.Options{
		ServerID:        *id,
		Queue:           *queue,
		Workers:         *workers,
		CellParallel:    *cellParallel,
		LeaseTTL:        *leaseTTL,
		DefaultDeadline: *deadline,
		RetryAfter:      *retryAfter,
		CacheDir:        *cacheDir,
		CkptDir:         *ckptDir,
		Faults:          rules,
		Seed:            *seed,
		Clock:           realClock(),
		Kill:            killSelf,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The harness contract: exactly one stdout line announcing the
	// resolved address, then silence (logs go to stderr).
	fmt.Printf("aquaserve listening on http://%s\n", ln.Addr())
	os.Stdout.Sync()

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	case sig := <-sigCh:
		log.Printf("%s: draining (grace %s)", sig, *drainT)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v (running jobs hard-cancelled)", err)
	} else {
		log.Printf("drained cleanly")
	}
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	<-serveErr
}

// realClock is the production farm.Clock: wall time and timer-backed
// context-aware sleep.
func realClock() farm.Clock {
	return farm.Clock{
		Now: time.Now,
		Sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
}

// killSelf is the worker-kill action: SIGKILL this process, no unwind,
// no deferred cleanup — the genuine crash the recovery machinery is
// tested against. os.Process.Kill delivers an uncatchable SIGKILL.
func killSelf() {
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		log.Fatalf("worker-kill: %v", err)
	}
	log.Printf("worker-kill fault: SIGKILL self")
	_ = p.Kill()
	// The signal is asynchronous; don't let the cell keep computing in
	// the gap.
	select {}
}
