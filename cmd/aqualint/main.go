// Command aqualint is the repository's static-analysis multichecker: it
// type-checks the requested packages and runs the determinism/soundness
// analyzer suite (nodirectrand, noclock, maporder, floatcmp) over them.
//
// Usage:
//
//	go run ./cmd/aqualint ./...          # whole repository
//	go run ./cmd/aqualint ./internal/dram
//	go run ./cmd/aqualint -list          # describe the analyzers
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load failure.
// Suppress a reviewed finding with an `//aqualint:ignore <name>` comment
// on the flagged line.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, an := range suite {
			fmt.Printf("%-14s %s\n", an.Name, an.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	dirs, err := lint.PackageDirs(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	if len(dirs) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aqualint: %s: %v\n", dir, err)
			exit = 2
			continue
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "aqualint: %s: type error: %v\n", pkg.Path, terr)
			exit = 2
		}
		for _, d := range lint.RunAnalyzers(pkg, suite) {
			fmt.Println(d)
			if exit == 0 {
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aqualint:", err)
	os.Exit(2)
}
