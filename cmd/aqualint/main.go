// Command aqualint is the repository's static-analysis multichecker: it
// type-checks the requested packages and runs the determinism/soundness
// analyzer suite over them — the per-package syntactic rules
// (nodirectrand, noclock, maporder, floatcmp, nakedgo) and the
// module-wide interprocedural rules (detertaint, keycoverage, guardedby)
// built on the call graph of the whole module. After the suite it audits
// `//aqualint:ignore` directives and reports any that suppressed nothing
// (analyzer name "unusedignore").
//
// Usage:
//
//	go run ./cmd/aqualint ./...                 # whole repository
//	go run ./cmd/aqualint ./internal/dram
//	go run ./cmd/aqualint -list                 # describe the analyzers
//	go run ./cmd/aqualint -json ./...           # machine-readable output
//	go run ./cmd/aqualint -enable detertaint ./...
//	go run ./cmd/aqualint -disable nakedgo ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load failure.
// Suppress a reviewed finding with an `//aqualint:ignore <name>` comment
// on the flagged line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	enable := flag.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := flag.String("disable", "", "comma-separated analyzers to skip")
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, an := range suite {
			kind := "package"
			if an.RunModule != nil {
				kind = "module"
			}
			fmt.Printf("%-14s [%s] %s\n", an.Name, kind, an.Doc)
		}
		fmt.Printf("%-14s [%s] %s\n", "unusedignore", "audit",
			"report //aqualint:ignore directives that suppressed nothing")
		return
	}

	suite, full, err := selectAnalyzers(suite, *enable, *disable)
	if err != nil {
		fatal(err)
	}
	enabled := make(map[string]bool, len(suite))
	for _, an := range suite {
		enabled[an.Name] = true
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}

	exit := 0
	mod, errs := lint.LoadModule(cwd, patterns)
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "aqualint: %v\n", err)
		exit = 2
	}
	if mod == nil {
		os.Exit(2)
	}
	if len(mod.Requested) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}
	for _, pkg := range mod.Pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "aqualint: %s: type error: %v\n", pkg.Path, terr)
			exit = 2
		}
	}

	// Per-package analyzers see the requested packages; module analyzers
	// see the whole module (annotation contracts cross package lines), but
	// their diagnostics are filtered to the requested set so `aqualint
	// ./internal/dram` stays scoped. The ignore audit runs last: only then
	// is every suppression hit recorded.
	var diags []lint.Diagnostic
	for _, pkg := range mod.Requested {
		diags = append(diags, lint.RunAnalyzers(pkg, suite)...)
	}
	requested := make(map[*lint.Package]bool, len(mod.Requested))
	for _, pkg := range mod.Requested {
		requested[pkg] = true
	}
	for _, d := range lint.RunModuleAnalyzers(mod, suite) {
		if requested[mod.PackageOf(d.Pos.Filename)] {
			diags = append(diags, d)
		}
	}
	diags = append(diags, lint.UnusedIgnores(mod.Requested, enabled, full)...)

	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 && exit == 0 {
		exit = 1
	}
	os.Exit(exit)
}

// selectAnalyzers applies -enable/-disable to the suite. full reports
// whether the whole suite runs (the blanket-ignore audit keys on it).
func selectAnalyzers(suite []*lint.Analyzer, enable, disable string) ([]*lint.Analyzer, bool, error) {
	known := make(map[string]bool, len(suite))
	for _, an := range suite {
		known[an.Name] = true
	}
	parse := func(flagName, s string) (map[string]bool, error) {
		if s == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(s, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				return nil, fmt.Errorf("-%s: unknown analyzer %q (see -list)", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	on, err := parse("enable", enable)
	if err != nil {
		return nil, false, err
	}
	off, err := parse("disable", disable)
	if err != nil {
		return nil, false, err
	}
	var out []*lint.Analyzer
	for _, an := range suite {
		if on != nil && !on[an.Name] {
			continue
		}
		if off[an.Name] {
			continue
		}
		out = append(out, an)
	}
	return out, len(out) == len(suite), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aqualint:", err)
	os.Exit(2)
}
