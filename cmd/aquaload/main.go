// Command aquaload is the load-test and chaos harness for aquaserve
// (internal/farm). It has two modes:
//
//	aquaload -mode load -serve-bin bin/aquaserve -golden testdata/lab_golden.txt \
//	         -n 100 -c 16 -expect-shed
//
// Load mode drives many concurrent, overlapping golden-grid jobs at one
// server (an existing one via -server, or a child it spawns via
// -serve-bin). Submissions shed with 429 are retried with deterministic
// seeded backoff (honouring Retry-After), and every completed job's
// output must be byte-identical to the committed golden file — under
// full overload, the farm may delay work but never corrupt it.
//
//	aquaload -mode chaos -serve-bin bin/aquaserve -golden testdata/lab_golden.txt
//
// Chaos mode is the crash-recovery acceptance test: it spawns server A
// armed with a worker-kill fault (SIGKILL at the -kill-at cell-start
// ordinal), submits the golden grid, and lets A die mid-grid holding a
// compute lease. It then spawns server B on the same cache/checkpoint
// directories, resubmits the identical job, and requires B to complete
// it byte-identical to golden — resuming A's durable cells and
// reclaiming A's expired lease instead of wedging. /stats must show the
// reclaim and the cache/checkpoint handoff.
//
// Exit status 0 iff every assertion holds.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/farm"
)

var (
	mode      = flag.String("mode", "load", "load | chaos")
	serverURL = flag.String("server", "", "existing server base URL (load mode; empty = spawn one)")
	serveBin  = flag.String("serve-bin", "", "path to the aquaserve binary to spawn")
	golden    = flag.String("golden", "", "path to the expected full-grid output (testdata/lab_golden.txt)")
	nJobs     = flag.Int("n", 100, "total jobs to submit (load mode)")
	conc      = flag.Int("c", 16, "concurrent clients (load mode)")
	expShed   = flag.Bool("expect-shed", false, "fail unless at least one submission shed with 429")
	seed      = flag.Uint64("seed", 0x41515541, "client backoff seed")
	timeout   = flag.Duration("timeout", 3*time.Minute, "overall harness deadline")
	killAt    = flag.Int("kill-at", 2, "cell-start ordinal where server A SIGKILLs itself (chaos mode)")
	leaseTTL  = flag.Duration("lease-ttl", 2*time.Second, "lease TTL for spawned servers")
	srvQueue  = flag.Int("serve-queue", 4, "queue bound for the spawned server (load mode)")
	srvWork   = flag.Int("serve-workers", 2, "workers for the spawned server (load mode)")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aquaload: ")
	flag.Parse()
	if *golden == "" {
		log.Fatal("-golden is required")
	}
	want, err := os.ReadFile(*golden)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var ok bool
	switch *mode {
	case "load":
		ok = runLoad(ctx, string(want))
	case "chaos":
		ok = runChaos(ctx, string(want))
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}
	if !ok {
		os.Exit(1)
	}
}

// ---- child-process harness ----

// child is one spawned aquaserve process.
type child struct {
	cmd     *exec.Cmd
	base    string
	waitErr error         // valid after dead is closed
	dead    chan struct{} // closed once Wait returns (safe to receive repeatedly)
}

// spawn starts an aquaserve child and parses its stdout listen line.
func spawn(ctx context.Context, name string, extra ...string) (*child, error) {
	args := append([]string{"-addr", "127.0.0.1:0", "-id", name}, extra...)
	cmd := exec.Command(*serveBin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	c := &child{cmd: cmd, dead: make(chan struct{})}
	go func() { c.waitErr = cmd.Wait(); close(c.dead) }()

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "aquaserve listening on ") {
				select {
				case lines <- strings.TrimPrefix(line, "aquaserve listening on "):
				default:
				}
			}
		}
	}()
	select {
	case c.base = <-lines:
		return c, nil
	case <-c.dead:
		return nil, fmt.Errorf("%s exited before listening: %v", name, c.waitErr)
	case <-ctx.Done():
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("%s: no listen line before deadline", name)
	}
}

// stop drains the child gracefully (SIGTERM) and waits for exit.
func (c *child) stop() {
	if c == nil {
		return
	}
	_ = c.cmd.Process.Signal(os.Interrupt)
	select {
	case <-c.dead:
	case <-time.After(30 * time.Second):
		_ = c.cmd.Process.Kill()
		<-c.dead
	}
}

// ---- HTTP client helpers ----

type submitAck struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`
}

// submitOnce POSTs one golden-spec job; on 429/503 it returns
// (ack zero, retryAfter, nil).
func submitOnce(ctx context.Context, base string) (submitAck, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", strings.NewReader(`{}`))
	if err != nil {
		return submitAck{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return submitAck{}, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var ack submitAck
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			return submitAck{}, 0, err
		}
		return ack, 0, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return submitAck{}, time.Duration(ra) * time.Second, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return submitAck{}, 0, fmt.Errorf("submit: %s: %s", resp.Status, body)
	}
}

// awaitJob polls until the job leaves queued/running.
func awaitJob(ctx context.Context, base, id string) (farm.JobStatus, error) {
	for {
		var st farm.JobStatus
		if err := getJSON(ctx, base+"/jobs/"+id, &st); err != nil {
			return st, err
		}
		if st.State != farm.JobQueued && st.State != farm.JobRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func getOutput(ctx context.Context, base, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id+"/output", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET output: %s: %s", resp.Status, body)
	}
	if p := resp.Header.Get("X-Aqua-Partial"); p != "" {
		return "", fmt.Errorf("output flagged partial (%s)", p)
	}
	return string(body), nil
}

// ---- load mode ----

func runLoad(ctx context.Context, want string) bool {
	base := *serverURL
	if base == "" {
		if *serveBin == "" {
			log.Fatal("load mode needs -server or -serve-bin")
		}
		dir, err := os.MkdirTemp("", "aquaload-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		c, err := spawn(ctx, "load-target",
			"-queue", strconv.Itoa(*srvQueue),
			"-workers", strconv.Itoa(*srvWork),
			"-cache-dir", filepath.Join(dir, "cells"),
			"-lease-ttl", leaseTTL.String(),
			"-retry-after", "1s")
		if err != nil {
			log.Fatal(err)
		}
		defer c.stop()
		base = c.base
	}

	var shed, retriesGiven, mismatches, failures atomic.Int64
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if err := oneLoadJob(ctx, base, idx, want, &shed); err != nil {
					if ctx.Err() != nil {
						return
					}
					if strings.Contains(err.Error(), "diverged") {
						mismatches.Add(1)
					} else if strings.Contains(err.Error(), "retries exhausted") {
						retriesGiven.Add(1)
					} else {
						failures.Add(1)
					}
					log.Printf("job %d: %v", idx, err)
				}
			}
		}()
	}
	for i := 0; i < *nJobs; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
		}
	}
	close(jobs)
	wg.Wait()

	log.Printf("load: %d jobs, %d clients: shed submissions %d, mismatches %d, failures %d, retry-exhausted %d",
		*nJobs, *conc, shed.Load(), mismatches.Load(), failures.Load(), retriesGiven.Load())
	ok := mismatches.Load() == 0 && failures.Load() == 0 && retriesGiven.Load() == 0 && ctx.Err() == nil
	if *expShed && shed.Load() == 0 {
		log.Printf("FAIL: expected admission control to shed at least once")
		ok = false
	}
	if ok {
		log.Printf("PASS: every completed job byte-identical to golden under overload")
	}
	return ok
}

// oneLoadJob submits with seeded-backoff retry, waits, and verifies the
// output bytes.
func oneLoadJob(ctx context.Context, base string, idx int, want string, shed *atomic.Int64) error {
	backoff := farm.NewBackoff(*seed, fmt.Sprintf("client-%d", idx), 50*time.Millisecond, 2*time.Second)
	var ack submitAck
	for {
		if backoff.Attempt() >= 120 {
			return fmt.Errorf("retries exhausted after %d sheds", backoff.Attempt())
		}
		a, retryAfter, err := submitOnce(ctx, base)
		if err != nil {
			return err
		}
		if a.ID != "" {
			ack = a
			break
		}
		shed.Add(1)
		d := backoff.Next()
		if retryAfter > d {
			d = retryAfter
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
	st, err := awaitJob(ctx, base, ack.ID)
	if err != nil {
		return err
	}
	if st.State != farm.JobDone {
		return fmt.Errorf("finished %s (error %q, failures %v)", st.State, st.Error, st.Failures)
	}
	out, err := getOutput(ctx, base, ack.ID)
	if err != nil {
		return err
	}
	if out != want {
		return fmt.Errorf("output diverged from golden (%d vs %d bytes)", len(out), len(want))
	}
	return nil
}

// ---- chaos mode ----

func runChaos(ctx context.Context, want string) bool {
	if *serveBin == "" {
		log.Fatal("chaos mode needs -serve-bin")
	}
	dir, err := os.MkdirTemp("", "aquachaos-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cacheDir := filepath.Join(dir, "cells")
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		log.Fatal(err)
	}
	shared := []string{
		"-workers", "1", "-cell-parallel", "1", "-queue", "4",
		"-cache-dir", cacheDir, "-ckpt-dir", ckptDir,
		"-lease-ttl", leaseTTL.String(),
		"-seed", strconv.FormatUint(*seed, 10),
	}

	// Server A: armed to SIGKILL itself at the kill-at'th cell start —
	// after claiming that cell's lease, before storing its result.
	a, err := spawn(ctx, "crash", append([]string{
		"-faults", fmt.Sprintf("*/*/*=worker-kill@once:%d", *killAt),
	}, shared...)...)
	if err != nil {
		log.Fatal(err)
	}
	defer a.stop()
	ackA, retryAfter, err := submitOnce(ctx, a.base)
	if err != nil || ackA.ID == "" {
		log.Fatalf("submit to A: id=%q retryAfter=%v err=%v", ackA.ID, retryAfter, err)
	}
	log.Printf("submitted %s to server A (key %.12s…); awaiting SIGKILL at cell ordinal %d", ackA.ID, ackA.Key, *killAt)

	select {
	case <-a.dead:
		log.Printf("server A died mid-grid as armed: %v", a.waitErr)
		if a.waitErr == nil {
			log.Printf("FAIL: server A exited cleanly; expected SIGKILL")
			return false
		}
	case <-ctx.Done():
		log.Printf("FAIL: server A still alive at harness deadline")
		return false
	}

	// Server B: same cache + checkpoint directories, no faults. The
	// duplicate job must resume A's durable cells and reclaim A's
	// orphaned lease once it expires.
	b, err := spawn(ctx, "resume", shared...)
	if err != nil {
		log.Fatal(err)
	}
	defer b.stop()
	ackB, _, err := submitOnce(ctx, b.base)
	if err != nil || ackB.ID == "" {
		log.Fatalf("submit to B: %v", err)
	}
	if ackB.Key != ackA.Key {
		log.Fatalf("FAIL: duplicate job key mismatch: %s vs %s", ackB.Key, ackA.Key)
	}
	st, err := awaitJob(ctx, b.base, ackB.ID)
	if err != nil {
		log.Fatalf("awaiting B's job: %v", err)
	}
	if st.State != farm.JobDone || len(st.Failures) != 0 {
		log.Printf("FAIL: B's job finished %s (error %q, failures %v)", st.State, st.Error, st.Failures)
		return false
	}
	out, err := getOutput(ctx, b.base, ackB.ID)
	if err != nil {
		log.Printf("FAIL: %v", err)
		return false
	}

	ok := true
	if out != want {
		log.Printf("FAIL: resumed output diverged from golden (%d vs %d bytes)", len(out), len(want))
		ok = false
	} else {
		log.Printf("resumed job byte-identical to golden (%d bytes)", len(out))
	}
	var stats farm.StatsSnapshot
	if err := getJSON(ctx, b.base+"/stats", &stats); err != nil {
		log.Printf("FAIL: stats: %v", err)
		return false
	}
	log.Printf("server B stats: simulated %d, cache hits %d, ckpt hits %d, lease reclaims %d, lease waits %d",
		stats.Cells.Simulated, stats.Cells.CacheHits, stats.CkptHits, stats.Leases.Reclaimed, stats.Cells.LeaseWaits)
	if stats.Leases.Reclaimed < 1 {
		log.Printf("FAIL: B never reclaimed A's orphaned lease")
		ok = false
	}
	if stats.CkptHits+stats.Cells.CacheHits < 1 {
		log.Printf("FAIL: no crash handoff: B neither hit A's checkpoint nor its cached cells")
		ok = false
	}
	// "No cell computed more than twice": A computed each cell at most
	// once before dying; B's lab memoizes per cell, so Simulated counts
	// each at most once more. A regression here would show as B
	// simulating more cells than the grid holds.
	if stats.Cells.Simulated > stats.Cells.Requests {
		log.Printf("FAIL: B simulated %d cells for %d requests", stats.Cells.Simulated, stats.Cells.Requests)
		ok = false
	}
	if ok {
		log.Printf("PASS: crash mid-grid recovered via lease expiry + cache/checkpoint resume")
	}
	return ok
}
