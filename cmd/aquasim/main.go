// Command aquasim runs one workload under one Rowhammer mitigation scheme
// on the baseline 16GB DDR4 system and reports performance and mitigation
// statistics.
//
// Usage:
//
//	aquasim -workload lbm -scheme aqua-memmapped -trh 1000
//	aquasim -workload mix03 -scheme rrs -trh 1000 -window 16
//	aquasim -faults '*/*/*=ecc-flip@p:0.01' -workload lbm
//	aquasim -timeout 2m -workload mix03
//	aquasim -cache-dir ~/.cache/aqua -workload lbm   # persist + reuse results
//	aquasim -list
//
// Schemes: baseline, aqua-sram, aqua-memmapped, rrs, blockhammer,
// victim-refresh.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro"
	"repro/internal/cellcache"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/mitigation"
	"repro/internal/sim"
)

var schemes = map[string]repro.Scheme{
	"baseline":       repro.SchemeBaseline,
	"aqua-sram":      repro.SchemeAquaSRAM,
	"aqua-memmapped": repro.SchemeAquaMemMapped,
	"rrs":            repro.SchemeRRS,
	"blockhammer":    repro.SchemeBlockhammer,
	"victim-refresh": repro.SchemeVictimRefresh,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("aquasim: ")

	workload := flag.String("workload", "lbm", "workload name (SPEC name or mixNN)")
	scheme := flag.String("scheme", "aqua-memmapped", "mitigation scheme")
	trh := flag.Int64("trh", 1000, "Rowhammer threshold T_RH")
	windowMS := flag.Int("window", 64, "simulated window in ms")
	seed := flag.Uint64("seed", 0, "experiment seed")
	faultSpec := flag.String("faults", "", "fault-injection rules, e.g. 'lbm/aqua-memmapped/1000=ecc-flip@p:0.01'")
	timeout := flag.Duration("timeout", 0, "cancel the run after this wall-clock duration (0 = none)")
	cache := flag.Bool("cache", true, "consult the content-addressed result cache (in-memory; add -cache-dir to persist)")
	cacheDir := flag.String("cache-dir", "", "directory for the on-disk cache tier shared with cmd/figures (implies -cache)")
	noCache := flag.Bool("no-cache", false, "disable the result cache entirely (overrides -cache and -cache-dir)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	list := flag.Bool("list", false, "list workloads and schemes")
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, n := range repro.AllWorkloads() {
			fmt.Println("  ", n)
		}
		fmt.Println("schemes:")
		names := make([]string, 0, len(schemes))
		for n := range schemes {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println("  ", n)
		}
		return
	}

	sch, ok := schemes[*scheme]
	if !ok {
		log.Fatalf("unknown scheme %q (try -list)", *scheme)
	}

	rules, err := fault.ParseRules(*faultSpec)
	if err != nil {
		log.Fatalf("-faults: %v", err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	runner, err := sim.NewRunnerE(sim.ExpConfig{
		Window:    dram.PS(*windowMS) * dram.Millisecond,
		Seed:      *seed,
		Calibrate: true,
		Faults:    rules,
	})
	if err != nil {
		log.Fatal(err)
	}
	useCache := !*noCache && (*cache || *cacheDir != "")
	if useCache {
		store, err := cellcache.New(*cacheDir)
		if err != nil {
			log.Fatalf("-cache-dir: %v", err)
		}
		runner.AttachCellCache(store)
	}

	start := time.Now()
	run, err := runner.RunCtx(ctx, *workload, sch, *trh)
	if err != nil {
		var ce *sim.CellError
		if errors.As(err, &ce) && len(ce.Stack) > 0 {
			log.Printf("%v", ce)
			log.Fatalf("recovered panic stack:\n%s", ce.Stack)
		}
		log.Fatal(err)
	}

	res := run.Result
	if *jsonOut {
		bd := sim.BreakdownOf(res)
		out := map[string]interface{}{
			"workload":         *workload,
			"scheme":           sch.String(),
			"trh":              *trh,
			"sim_time_ms":      float64(res.SimTime) / 1e9,
			"instructions":     res.Instr,
			"requests":         res.Requests,
			"ipc":              res.IPC,
			"normalized_ipc":   run.NormIPC,
			"slowdown_pct":     (1/run.NormIPC - 1) * 100,
			"avg_latency_ns":   float64(res.CtrlStats.AvgLatency()) / 1e3,
			"mitigations":      res.MitStats.Mitigations,
			"row_migrations":   res.MitStats.RowMigrations,
			"migrations_per64": res.MigrationsPer64ms,
			"evictions":        res.MitStats.Evictions,
			"channel_busy_ms":  float64(res.MitStats.ChannelBusy) / 1e9,
			"dram_power_mw":    res.DRAMPowerMW,
			"lookup_breakdown": map[string]float64{
				"bloom_filtered": bd.BloomFiltered,
				"cache_hit":      bd.CacheHit,
				"singleton":      bd.Singleton,
				"dram":           bd.DRAM,
			},
			"wall_time":       time.Since(start).String(),
			"faults_injected": res.FaultStats.Injected,
		}
		if useCache {
			cs := runner.CellStats()
			out["cache_hits"] = cs.CacheHits
			out["cache_misses"] = cs.CacheMisses
			out["cache_deduped"] = cs.Deduped()
			out["cache_simulated"] = cs.Simulated
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("workload        %s\n", *workload)
	fmt.Printf("scheme          %s (T_RH=%d)\n", sch, *trh)
	fmt.Printf("simulated time  %.2f ms\n", float64(res.SimTime)/1e9)
	fmt.Printf("instructions    %d\n", res.Instr)
	fmt.Printf("requests        %d\n", res.Requests)
	fmt.Printf("IPC             %.3f\n", res.IPC)
	fmt.Printf("normalized IPC  %.3f (slowdown %.1f%%)\n", run.NormIPC, (1/run.NormIPC-1)*100)
	fmt.Printf("avg latency     %.1f ns\n", float64(res.CtrlStats.AvgLatency())/1e3)

	st := res.MitStats
	if sch != repro.SchemeBaseline {
		fmt.Printf("mitigations     %d\n", st.Mitigations)
		fmt.Printf("row migrations  %d (%.0f per 64ms)\n", st.RowMigrations, res.MigrationsPer64ms)
		fmt.Printf("evictions       %d\n", st.Evictions)
		fmt.Printf("channel busy    %.2f ms (mitigation)\n", float64(st.ChannelBusy)/1e9)
		if st.ThrottleDelay > 0 {
			fmt.Printf("throttle delay  %.2f ms\n", float64(st.ThrottleDelay)/1e9)
		}
		if total := st.TotalLookups(); total > 0 && sch == repro.SchemeAquaMemMapped {
			bd := sim.BreakdownOf(res)
			fmt.Printf("FPT lookups     %.1f%% bloom-filtered, %.1f%% cache hits, %.2f%% singleton, %.3f%% DRAM\n",
				bd.BloomFiltered*100, bd.CacheHit*100, bd.Singleton*100, bd.DRAM*100)
		}
		var classes string
		for c := mitigation.LookupClass(0); c < mitigation.NumLookupClasses; c++ {
			if st.Lookups[c] > 0 {
				classes += fmt.Sprintf(" %s=%d", c, st.Lookups[c])
			}
		}
		if classes != "" {
			fmt.Printf("lookup classes %s\n", classes)
		}
	}
	if fs := res.FaultStats; fs.Injected > 0 {
		fmt.Printf("faults injected %d (migration aborts %d, overflow fallbacks %d, refresh collisions %d)\n",
			fs.Injected, st.MigrationAborts, st.OverflowFallbacks, res.CtrlStats.RefreshCollisions)
	}
	if useCache {
		if cs := runner.CellStats(); cs.Requests > 0 {
			fmt.Printf("result cache    %d hits, %d misses, %d simulated\n",
				cs.CacheHits, cs.CacheMisses, cs.Simulated)
		}
	}
	fmt.Printf("wall time       %s\n", time.Since(start).Round(time.Millisecond))
}
