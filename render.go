package repro

// The canonical renderer registry: every simulation-backed table/figure,
// in the fixed order the golden file (testdata/lab_golden.txt) commits
// to. The golden test, the checkpoint/resume acceptance tests, and the
// experiment farm all render through this registry, so "byte-identical
// figures" means the same bytes everywhere.

import (
	"fmt"
	"strings"
)

// Renderer is one named simulation-backed renderer.
type Renderer struct {
	Name string
	Fn   func(*Lab) (string, error)
}

// Renderers returns the canonical registry in golden-file order.
func Renderers() []Renderer {
	return []Renderer{
		{"table2", (*Lab).Table2},
		{"figure3", (*Lab).Figure3},
		{"figure6", (*Lab).Figure6},
		{"figure7", (*Lab).Figure7},
		{"figure9", (*Lab).Figure9},
		{"figure10", (*Lab).Figure10},
		{"figure11", (*Lab).Figure11},
		{"table4", (*Lab).Table4},
		{"table6", (*Lab).Table6},
		{"section5f", (*Lab).SensitivityVF},
		{"section5h", (*Lab).PowerReport},
	}
}

// RendererNames returns the registry's names in canonical order.
func RendererNames() []string {
	rs := Renderers()
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Name
	}
	return names
}

// RendererByName resolves one registry entry.
func RendererByName(name string) (Renderer, bool) {
	for _, r := range Renderers() {
		if r.Name == name {
			return r, true
		}
	}
	return Renderer{}, false
}

// RenderSection renders one registry entry in the golden framing:
// "=== name ===\n<output>\n".
func RenderSection(l *Lab, r Renderer) (string, error) {
	out, err := r.Fn(l)
	if err != nil {
		return "", fmt.Errorf("%s: %w", r.Name, err)
	}
	return fmt.Sprintf("=== %s ===\n%s\n", r.Name, out), nil
}

// RenderAll renders the full registry on the lab, producing the exact
// byte stream committed as testdata/lab_golden.txt (for the golden lab
// configuration).
func RenderAll(l *Lab) (string, error) {
	var b strings.Builder
	for _, r := range Renderers() {
		sec, err := RenderSection(l, r)
		if err != nil {
			return "", err
		}
		b.WriteString(sec)
	}
	return b.String(), nil
}
