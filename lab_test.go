package repro

import (
	"strings"
	"testing"

	"repro/internal/dram"
)

// fastLab runs the figure machinery on a tiny window and two workloads so
// the full pipeline is exercised in CI time; the full-window runs live in
// bench_test.go and cmd/figures.
func fastLab() *Lab {
	return NewLab(LabOptions{
		Window:        500 * dram.PS(dram.Microsecond),
		Workloads:     []string{"xz", "wrf"},
		NoCalibration: true,
	})
}

func TestLabFigure3(t *testing.T) {
	out, err := fastLab().Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RRS-4K", "RRS-1K", "xz", "wrf", "Gmean-2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLabFigure6And7ShareCache(t *testing.T) {
	l := fastLab()
	if _, err := l.Figure7(); err != nil {
		t.Fatal(err)
	}
	cached := len(l.SortedCacheKeys())
	if _, err := l.Figure6(); err != nil {
		t.Fatal(err)
	}
	// Figure 6 adds only the memory-mapped cells; the RRS cells are
	// reused from Figure 7.
	added := len(l.SortedCacheKeys()) - cached
	if added > 2 {
		t.Fatalf("cache not shared: %d new cells", added)
	}
}

func TestLabFigure9And10(t *testing.T) {
	l := fastLab()
	out9, err := l.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out9, "AQUA-SRAM") || !strings.Contains(out9, "AQUA-MemMap") {
		t.Fatalf("figure 9:\n%s", out9)
	}
	out10, err := l.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out10, "Bloom-reset") || !strings.Contains(out10, "Average") {
		t.Fatalf("figure 10:\n%s", out10)
	}
}

func TestLabFigure11(t *testing.T) {
	out, err := fastLab().Figure11()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2000", "1000", "500", "Slowdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestLabStaticFiguresAndTables(t *testing.T) {
	if out := Figure2(); !strings.Contains(out, "139K") {
		t.Error("figure 2 lost its history")
	}
	if out := Figure12(); !strings.Contains(out, "6.0") && !strings.Contains(out, "6") {
		t.Errorf("figure 12:\n%s", out)
	}
	out := Table3()
	for _, want := range []string{"23053", "180", "1.1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 missing %q:\n%s", want, out)
		}
	}
	out = Table5()
	for _, want := range []string{"339601", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 5 missing %q:\n%s", want, out)
		}
	}
	out = Table7()
	if !strings.Contains(out, "Total") || !strings.Contains(out, "Tracker") {
		t.Errorf("table 7:\n%s", out)
	}
	out = StorageReport()
	for _, want := range []string{"quarantine", "bloom", "Power"} {
		if !strings.Contains(out, want) {
			t.Errorf("storage report missing %q:\n%s", want, out)
		}
	}
}

func TestLabTable2(t *testing.T) {
	out, err := fastLab().Table2()
	if err != nil {
		t.Fatal(err)
	}
	// Mixes are skipped; the two SPEC workloads appear with paper values
	// in parentheses.
	if !strings.Contains(out, "xz") || !strings.Contains(out, "(655)") {
		t.Fatalf("table 2:\n%s", out)
	}
}

func TestLabTable4And6(t *testing.T) {
	l := fastLab()
	out4, err := l.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out4, "Half-Double") {
		t.Fatalf("table 4:\n%s", out4)
	}
	out6, err := l.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Blockhammer", "CROW", "RRS", "AQUA", "1280x", "2.95x"} {
		if !strings.Contains(out6, want) {
			t.Errorf("table 6 missing %q:\n%s", want, out6)
		}
	}
}

func TestLabRunCaching(t *testing.T) {
	l := fastLab()
	a, err := l.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache returned a different result")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// The README quick-start path.
	rank := NewBaselineRank()
	aqua := NewAqua(rank, AquaConfig{TRH: 1000})
	ctrl := NewController(rank, aqua)
	done := ctrl.Submit(Row(12345), false, 0)
	if done <= 0 {
		t.Fatal("no completion")
	}
	mon := NewSecurityMonitor(NewBaselineRank(), 1000)
	if mon.Violated() {
		t.Fatal("fresh monitor violated")
	}
	// Other facade constructors wire up.
	rank2 := NewBaselineRank()
	if NewRRS(rank2, RRSConfig{TRH: 1000}).Name() != "rrs" {
		t.Fatal("rrs facade")
	}
	rank3 := NewBaselineRank()
	if NewBlockhammer(rank3, BlockhammerConfig{}).Name() != "blockhammer" {
		t.Fatal("blockhammer facade")
	}
	rank4 := NewBaselineRank()
	if NewVictimRefresh(rank4, VictimRefreshConfig{}).Name() != "victim-refresh" {
		t.Fatal("vrefresh facade")
	}
	if len(AllWorkloads()) != 34 || len(SPECWorkloads()) != 18 {
		t.Fatal("workload lists")
	}
}

func TestLabSensitivityVF(t *testing.T) {
	out, err := fastLab().SensitivityVF()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bloom-filter", "fpt-cache", "8 KB", "32 KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLabPowerReport(t *testing.T) {
	out, err := fastLab().PowerReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DRAM", "SRAM", "13.6 mW"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLabTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"16 GB", "128K", "14.2-14.2-14.2-45"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestLabCoRunReport(t *testing.T) {
	l := NewLab(LabOptions{
		Window:        500 * dram.PS(dram.Microsecond),
		Workloads:     []string{"xz"},
		NoCalibration: true,
	})
	out, err := l.CoRunReport("xz")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DoS attacker", "analytical bound", "violated: false"} {
		if !strings.Contains(out, want) {
			t.Errorf("co-run report missing %q:\n%s", want, out)
		}
	}
	if _, err := l.CoRunReport("ghost"); err == nil {
		t.Fatal("ghost workload accepted")
	}
}
