package repro

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/flipmodel"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/rrs"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/tracker"
	"repro/internal/vrefresh"
	"repro/internal/workload"
)

// runAttack drives one attack stream through a single core against the
// given mitigator and returns the system pieces for inspection.
func runAttack(t *testing.T, mit mitigation.Mitigator, rank *dram.Rank, trh int, stream cpu.Stream) (*security.Monitor, *memctrl.Controller) {
	t.Helper()
	mon := security.NewMonitor(trh, rank.Timing().TREFW)
	mon.Attach(rank)
	ctrl := memctrl.New(rank, mit, memctrl.Config{})
	c := cpu.New(0, stream, cpu.Config{MLP: 1})
	for {
		at, ok := c.NextIssueTime()
		if !ok {
			break
		}
		c.Issue(at, ctrl.Submit)
	}
	return mon, ctrl
}

func TestBaselineVulnerableToDoubleSided(t *testing.T) {
	geom := BaselineGeometry()
	rank := NewRank(geom, DDR4Timing())
	victim := geom.RowOf(3, 5000)
	const trh = 1000
	mon, _ := runAttack(t, mitigation.None{}, rank, trh,
		attack.DoubleSided(geom, victim, 2*trh))
	if !mon.Violated() {
		t.Fatal("unprotected memory survived a double-sided attack")
	}
}

func TestBaselineVulnerableToSingleSided(t *testing.T) {
	geom := BaselineGeometry()
	rank := NewRank(geom, DDR4Timing())
	aggr := geom.RowOf(0, 777)
	mon, _ := runAttack(t, mitigation.None{}, rank, 1000,
		attack.SingleSided(geom, aggr, geom.RowsPerBank, 2000))
	if !mon.Violated() {
		t.Fatal("unprotected memory survived single-sided hammering")
	}
}

func TestAquaStopsDoubleSided(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSRAM, core.ModeMemMapped} {
		rank := NewBaselineRank()
		geom := rank.Geometry()
		eng := core.New(rank, core.Config{TRH: 1000, Mode: mode})
		victim := geom.RowOf(3, 5000)
		mon, _ := runAttack(t, eng, rank, 1000,
			attack.DoubleSided(geom, victim, 4000))
		if mon.Violated() {
			t.Fatalf("%s: AQUA violated: %+v", mode, mon.Violations()[0])
		}
		if eng.Stats().Mitigations == 0 {
			t.Fatalf("%s: attack triggered no mitigations", mode)
		}
		if _, max := mon.MaxWindowCount(); max >= 1000 {
			t.Fatalf("%s: a row reached %d ACTs", mode, max)
		}
	}
}

func TestAquaStopsSustainedHammering(t *testing.T) {
	// The attacker follows the row through every quarantine: translate,
	// hammer, repeat — 20x the threshold in total. Property P3: even the
	// quarantine slots migrate before reaching T_RH.
	rank := NewBaselineRank()
	geom := rank.Geometry()
	const trh = 1000
	eng := core.New(rank, core.Config{TRH: trh, Mode: core.ModeMemMapped})
	mon := security.NewMonitor(trh, rank.Timing().TREFW)
	mon.Attach(rank)
	ctrl := memctrl.New(rank, eng, memctrl.Config{})

	// The adaptive pattern forces one target activation per round even as
	// migrations move the row across banks.
	aggr := geom.RowOf(0, 42)
	stream := attack.AdaptiveHammer(geom, aggr, 60000, 8*trh)
	c := cpu.New(0, stream, cpu.Config{MLP: 1})
	for {
		at, ok := c.NextIssueTime()
		if !ok {
			break
		}
		c.Issue(at, ctrl.Submit)
	}
	if mon.Violated() {
		t.Fatalf("sustained hammering violated: %+v", mon.Violations()[0])
	}
	if eng.Stats().Mitigations < 10 {
		t.Fatalf("expected many internal migrations, got %d", eng.Stats().Mitigations)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRRSStopsSustainedHammering(t *testing.T) {
	rank := NewBaselineRank()
	geom := rank.Geometry()
	const trh = 1000
	eng := rrs.New(rank, rrs.Config{TRH: trh, Seed: 9})
	mon := security.NewMonitor(trh, rank.Timing().TREFW)
	mon.Attach(rank)
	ctrl := memctrl.New(rank, eng, memctrl.Config{})

	aggr := geom.RowOf(1, 42)
	stream := attack.AdaptiveHammer(geom, aggr, geom.RowsPerBank, 6*trh)
	c := cpu.New(0, stream, cpu.Config{MLP: 1})
	for {
		at, ok := c.NextIssueTime()
		if !ok {
			break
		}
		c.Issue(at, ctrl.Submit)
	}
	if mon.Violated() {
		t.Fatalf("RRS violated: %+v", mon.Violations()[0])
	}
	if eng.Stats().Mitigations == 0 {
		t.Fatal("RRS never swapped under sustained hammering")
	}
}

func TestHalfDoubleDefeatsVictimRefreshButNotAqua(t *testing.T) {
	geom := BaselineGeometry()
	const trh = 400 // keep the attack cheap; behaviour is threshold-relative
	victim := geom.RowOf(2, 1000)
	// The attacker hammers the distance-2 ring around the victim hard
	// enough that the mitigating refreshes of the distance-1 rows
	// themselves accumulate T_RH disturbances on the victim.
	acts := int64(trh) * int64(trh) // enough refresh triggers

	// The flip threshold is 2*T_RH combined disturbance: T_RH is defined
	// per aggressor row, and a victim has two distance-1 neighbours.
	const flipThreshold = 2 * trh

	// Victim refresh: flips the distance-2 victim (Figure 1a).
	{
		rank := NewRank(geom, DDR4Timing())
		fm := flipmodel.New(geom, flipThreshold, rank.Timing().TREFW)
		fm.Attach(rank)
		eng := vrefresh.New(rank, vrefresh.Config{
			TRH:       trh,
			OnRefresh: func(r dram.Row, at dram.PS) { fm.RowOpened(r, at) },
		})
		mon, _ := runAttack(t, eng, rank, trh, attack.HalfDouble(geom, victim, acts))
		_ = mon
		flipped := false
		for _, f := range fm.Flips() {
			if f.Victim == victim {
				flipped = true
			}
		}
		if !flipped {
			t.Fatal("Half-Double did not flip the distance-2 victim under victim refresh")
		}
	}

	// AQUA: the aggressors are quarantined away; no row in the victim's
	// neighbourhood accumulates the threshold. Deliberately checked at the
	// *stricter* 1x combined threshold — AQUA holds with margin.
	{
		rank := NewRank(geom, DDR4Timing())
		fm := flipmodel.New(geom, trh, rank.Timing().TREFW)
		fm.Attach(rank)
		eng := core.New(rank, core.Config{TRH: trh, Mode: core.ModeMemMapped})
		mon, _ := runAttack(t, eng, rank, trh, attack.HalfDouble(geom, victim, acts))
		for _, f := range fm.Flips() {
			if f.Victim == victim {
				t.Fatal("Half-Double flipped the victim despite AQUA")
			}
		}
		if mon.Violated() {
			t.Fatalf("AQUA activation invariant violated: %+v", mon.Violations()[0])
		}
	}
}

func TestWorstCaseDoSBounded(t *testing.T) {
	// Section VI-C: the worst adversarial pattern slows the memory system
	// by at most ~2.95x. Measure the same DoS stream on baseline and AQUA
	// and compare elapsed time.
	geom := BaselineGeometry()
	const trh = 1000
	region := sim.VisibleRegion(sim.Config{})
	run := func(mit func(*dram.Rank) mitigation.Mitigator) dram.PS {
		rank := NewRank(geom, DDR4Timing())
		ctrl := memctrl.New(rank, mit(rank), memctrl.Config{})
		s := attack.NewRotatingDoS(geom, region.VisibleRowsPerBank, trh/2, 200_000)
		c := cpu.New(0, s, cpu.Config{MLP: 4})
		var last dram.PS
		for {
			at, ok := c.NextIssueTime()
			if !ok {
				break
			}
			c.Issue(at, ctrl.Submit)
			last = c.FinishTime()
		}
		return last
	}
	base := run(func(*dram.Rank) mitigation.Mitigator { return mitigation.None{} })
	aqua := run(func(r *dram.Rank) mitigation.Mitigator {
		return core.New(r, core.Config{TRH: trh, Mode: core.ModeSRAM})
	})
	slowdown := float64(aqua) / float64(base)
	if slowdown > 3.1 {
		t.Fatalf("DoS slowdown %.2fx exceeds the 2.95x analytical bound", slowdown)
	}
	if slowdown < 1.05 {
		t.Fatalf("DoS pattern had no effect (%.2fx) — attack not exercising migrations", slowdown)
	}
}

func TestTableHammerDefended(t *testing.T) {
	// Section VI-B integrity: hammering AQUA's in-DRAM FPT via forced
	// lookup misses must quarantine the table row itself, and no physical
	// row may reach T_RH.
	rank := NewBaselineRank()
	geom := rank.Geometry()
	const trh = 200
	eng := core.New(rank, core.Config{TRH: trh, Mode: core.ModeMemMapped})
	mon := security.NewMonitor(trh, rank.Timing().TREFW)
	mon.Attach(rank)
	ctrl := memctrl.New(rank, eng, memctrl.Config{})

	// Setup: quarantine two rows in each of two groups of the first FPT
	// table row's coverage (rows 0..4095 share one 8KB FPT row).
	setup := []dram.Row{geom.RowOf(0, 0), geom.RowOf(0, 1),
		geom.RowOf(0, 16), geom.RowOf(0, 17)}
	// Sweep distinct rows of those groups: every access walks to DRAM.
	var sweep []dram.Row
	for i := 2; i < 16; i++ {
		sweep = append(sweep, geom.RowOf(0, i))
	}
	for i := 18; i < 32; i++ {
		sweep = append(sweep, geom.RowOf(0, i))
	}
	stream := attack.TableHammer(geom, eng.VisibleRowsPerBank(), setup, sweep, trh/2, 40)
	c := cpu.New(0, stream, cpu.Config{MLP: 1})
	for {
		at, ok := c.NextIssueTime()
		if !ok {
			break
		}
		c.Issue(at, ctrl.Submit)
	}
	for _, r := range setup {
		if !eng.IsQuarantined(r) {
			t.Fatalf("setup row %d not quarantined", r)
		}
	}
	if eng.Stats().TableDRAMAccesses == 0 {
		t.Fatal("sweep never reached the in-DRAM FPT")
	}
	if mon.Violated() {
		t.Fatalf("table hammering violated the invariant: %+v", mon.Violations()[0])
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBirthdayProbingAgainstRRS(t *testing.T) {
	// RRS's threat: an attacker who hammers a row and probes random rows
	// hoping to find the swap destination. Whatever the probes hit, no
	// physical row may cross T_RH.
	rank := NewBaselineRank()
	geom := rank.Geometry()
	const trh = 600
	eng := rrs.New(rank, rrs.Config{TRH: trh, Seed: 4})
	mon := security.NewMonitor(trh, rank.Timing().TREFW)
	mon.Attach(rank)
	ctrl := memctrl.New(rank, eng, memctrl.Config{})

	aggr := geom.RowOf(0, 9)
	at := dram.PS(0)
	probe := dram.Row(1)
	for i := 0; i < 6*trh; i++ {
		at = ctrl.Submit(aggr, false, at)
		probe = dram.Row((uint64(probe)*2862933555777941757 + 3037000493) % uint64(geom.Rows()))
		// Probes must avoid the reserved strips only in AQUA; RRS has
		// none, so any row is fair game.
		at = ctrl.Submit(probe, false, at)
	}
	if mon.Violated() {
		t.Fatalf("birthday probing violated: %+v", mon.Violations()[0])
	}
}

func TestManySidedAgainstAqua(t *testing.T) {
	rank := NewBaselineRank()
	geom := rank.Geometry()
	const trh = 500
	eng := core.New(rank, core.Config{TRH: trh, Mode: core.ModeSRAM})
	victim := geom.RowOf(1, 4000)
	mon, _ := runAttack(t, eng, rank, trh,
		attack.ManySided(geom, victim, 4, 3*trh))
	if mon.Violated() {
		t.Fatalf("many-sided attack violated: %+v", mon.Violations()[0])
	}
	if eng.Stats().Mitigations == 0 {
		t.Fatal("many-sided attack triggered no quarantines")
	}
}

func TestAquaHydraTrackerStopsAttack(t *testing.T) {
	// Appendix B's AQUA-Hydra configuration: the storage-optimized hybrid
	// tracker must preserve the security invariant end-to-end.
	rank := NewBaselineRank()
	geom := rank.Geometry()
	const trh = 1000
	eng := core.New(rank, core.Config{
		TRH:     trh,
		Mode:    core.ModeMemMapped,
		Tracker: tracker.NewHydra(geom, trh/2, 128),
	})
	mon := security.NewMonitor(trh, rank.Timing().TREFW)
	mon.Attach(rank)
	ctrl := memctrl.New(rank, eng, memctrl.Config{})
	stream := attack.AdaptiveHammer(geom, geom.RowOf(2, 42), 60000, 5*trh)
	c := cpu.New(0, stream, cpu.Config{MLP: 1})
	for {
		at, ok := c.NextIssueTime()
		if !ok {
			break
		}
		c.Issue(at, ctrl.Submit)
	}
	if mon.Violated() {
		t.Fatalf("AQUA-Hydra violated: %+v", mon.Violations()[0])
	}
	if eng.Stats().Mitigations == 0 {
		t.Fatal("Hydra tracker never triggered")
	}
}

func TestProactiveDrainPreservesSecurity(t *testing.T) {
	// The Section IV-D background drainer must not weaken the invariant:
	// run the sustained attack across an epoch boundary with draining on.
	rank := NewBaselineRank()
	geom := rank.Geometry()
	const trh = 400
	eng := core.New(rank, core.Config{
		TRH: trh, Mode: core.ModeMemMapped, ProactiveDrain: true,
	})
	mon := security.NewMonitor(trh, rank.Timing().TREFW)
	mon.Attach(rank)
	ctrl := memctrl.New(rank, eng, memctrl.Config{
		EpochLength:       2 * dram.Millisecond,
		IdleDrainInterval: 20 * dram.Microsecond,
	})
	stream := attack.AdaptiveHammer(geom, geom.RowOf(1, 7), 60000, 12*trh)
	c := cpu.New(0, stream, cpu.Config{MLP: 1})
	for {
		at, ok := c.NextIssueTime()
		if !ok {
			break
		}
		c.Issue(at, ctrl.Submit)
	}
	if mon.Violated() {
		t.Fatalf("drain-enabled AQUA violated: %+v", mon.Violations()[0])
	}
	if eng.Stats().ProactiveDrains == 0 {
		t.Fatal("drainer never ran despite epoch rollover")
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoRunDoSImpactBounded(t *testing.T) {
	// Section VI-C, end to end: with a DoS attacker on one core and a
	// benign workload on the others, AQUA's extra interference on the
	// victims (beyond the attack's own bandwidth use) stays within the
	// 2.95x analytical bound, and the invariant holds throughout.
	spec, ok := workloadByName("gcc")
	if !ok {
		t.Fatal("gcc spec missing")
	}
	res, err := sim.CoRun(sim.SchemeAquaSRAM, 1000, spec, 4*dram.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Fatal("co-run violated the invariant")
	}
	if res.Mitigations == 0 {
		t.Fatal("attacker triggered no mitigations")
	}
	if res.AttackSlowdown > 3.1 {
		t.Fatalf("victim slowdown %.2fx exceeds the DoS bound", res.AttackSlowdown)
	}
	if res.VictimIPC <= 0 || res.BaselineVictimIPC <= 0 || res.SoloVictimIPC <= 0 {
		t.Fatalf("degenerate IPCs: %+v", res)
	}
	// The attack itself must cost the victims something relative to solo.
	if res.BaselineVictimIPC >= res.SoloVictimIPC {
		t.Logf("note: attacker did not measurably disturb victims (%.3f vs %.3f)",
			res.BaselineVictimIPC, res.SoloVictimIPC)
	}
}

// workloadByName re-exports workload lookup for the co-run test.
func workloadByName(name string) (workload.Spec, bool) { return workload.ByName(name) }
