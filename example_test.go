package repro_test

import (
	"fmt"

	"repro"
	"repro/internal/analytic"
	"repro/internal/dram"
)

// The canonical flow: build the baseline system, protect it with AQUA,
// hammer a row past the migration threshold, and observe the quarantine.
func ExampleNewAqua() {
	rank := repro.NewBaselineRank()
	aqua := repro.NewAqua(rank, repro.AquaConfig{TRH: 1000})
	ctrl := repro.NewController(rank, aqua)

	geom := rank.Geometry()
	aggressor := geom.RowOf(0, 42)
	conflict := geom.RowOf(0, 99_000) // same bank: every access activates

	var now repro.PS
	for i := 0; i < 500; i++ {
		now = ctrl.Submit(aggressor, false, now)
		now = ctrl.Submit(conflict, false, now)
	}
	// Both rows crossed T_RH/2 = 500 activations, so both were moved to
	// the quarantine area.
	fmt.Println("quarantined:", aqua.IsQuarantined(aggressor), aqua.IsQuarantined(conflict))
	fmt.Println("mitigations:", aqua.Stats().Mitigations)
	// Output:
	// quarantined: true true
	// mitigations: 2
}

// The security oracle watches every physical activation at the rank; an
// unprotected system hammered past T_RH reports a violation.
func ExampleNewSecurityMonitor() {
	rank := repro.NewBaselineRank()
	mon := repro.NewSecurityMonitor(rank, 1000)
	ctrl := repro.NewController(rank, nil) // unprotected

	geom := rank.Geometry()
	a, b := geom.RowOf(0, 1), geom.RowOf(0, 2)
	var now repro.PS
	for i := 0; i < 1500; i++ {
		now = ctrl.Submit(a, false, now)
		now = ctrl.Submit(b, false, now)
	}
	fmt.Println("violated:", mon.Violated())
	// Output:
	// violated: true
}

// Equation 3 sizes the Row Quarantine Area so no slot is reused within a
// refresh window; at the paper's default threshold it is 1.1% of memory.
func ExampleTable3() {
	p := analytic.BaselineRQAParams(500) // effective threshold T_RH/2
	fmt.Println("RQA rows:", p.RMax())
	fmt.Printf("DRAM overhead: %.1f%%\n", 100*p.DRAMOverhead(dram.Baseline()))
	// Output:
	// RQA rows: 23053
	// DRAM overhead: 1.1%
}

// The Appendix-A model bounds RRS's migration overhead relative to AQUA:
// at least 6x, and 9x at the measured hot-row fraction.
func ExampleFigure12() {
	fmt.Printf("r(1.0) = %.0fx\n", analytic.RelativeMigrations(1.0))
	fmt.Printf("r(0.4) = %.0fx\n", analytic.RelativeMigrations(0.4))
	// Output:
	// r(1.0) = 6x
	// r(0.4) = 9x
}
