package repro

// Acceptance tests for the content-addressed result cache (see DESIGN.md
// "Result cache & incremental recomputation"):
//
//   - a lab rendered entirely from a warm on-disk cache emits the exact
//     golden byte stream, without simulating a single cell;
//   - the cache composes with the PR 4 checkpoint: a resumed lab with a
//     warm cache still reproduces the golden bytes, serves cells from
//     both sources, and double-counts nothing;
//   - fault-injected cells re-simulate on every run even with a warm
//     cache, and appear exactly once in the degraded-cell summary.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cellcache"
)

// warmStore builds a store over dir, failing the test on error.
func warmStore(t *testing.T, dir string) *cellcache.Store {
	t.Helper()
	s, err := cellcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLabCacheWarmGolden is the cache's headline acceptance: a cold lab
// populates a cache directory while rendering the golden stream, and a
// fresh lab over a fresh Store on the same directory re-renders it
// byte-identically — with every cell served from disk, none simulated.
func TestLabCacheWarmGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "lab_golden.txt"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	dir := t.TempDir()

	cold := labAt(1)
	cold.AttachCache(warmStore(t, dir))
	got, err := renderGoldenLab(cold)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("cold cached lab diverged from golden:\n%s", firstDiff(string(want), got))
	}
	if cs := cold.CellStats(); cs.Simulated == 0 {
		t.Fatalf("cold lab stats %+v; expected simulations", cs)
	}

	warm := labAt(1)
	warm.AttachCache(warmStore(t, dir))
	got, err = renderGoldenLab(warm)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("warm cached lab diverged from golden:\n%s", firstDiff(string(want), got))
	}
	cs := warm.CellStats()
	if cs.CacheHits == 0 {
		t.Fatalf("warm lab stats %+v; took no cache hits", cs)
	}
	if cs.Simulated != 0 {
		t.Fatalf("warm lab stats %+v; simulated %d cells, want 0", cs, cs.Simulated)
	}
}

// TestLabCacheResumeInteraction composes the cache with the checkpoint:
// a lab resuming a partial checkpoint over a warm cache must render the
// golden bytes exactly, serving the checkpointed cells from the file
// and the rest from the cache — still with zero simulations.
func TestLabCacheResumeInteraction(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "lab_golden.txt"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	dir := t.TempDir()

	// Warm the cache with a full cold render.
	cold := labAt(1)
	cold.AttachCache(warmStore(t, dir))
	if _, err := renderGoldenLab(cold); err != nil {
		t.Fatal(err)
	}

	// Partial checkpointed run (no cache): two renderers' worth of cells.
	ckpt := filepath.Join(t.TempDir(), "lab.ckpt")
	partial := labAt(1)
	if err := partial.AttachCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := partial.Figure7(); err != nil {
		t.Fatal(err)
	}
	if err := partial.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// Resume with both sources attached.
	resumed := labAt(1)
	resumed.AttachCache(warmStore(t, dir))
	if err := resumed.AttachCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	got, err := renderGoldenLab(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if hits := resumed.CheckpointHits(); hits == 0 {
		t.Fatal("resumed lab never hit the checkpoint")
	}
	if err := resumed.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("resumed+cached lab diverged from golden:\n%s", firstDiff(string(want), got))
	}
	cs := resumed.CellStats()
	if cs.Simulated != 0 {
		t.Fatalf("resumed lab stats %+v; simulated %d cells, want 0", cs, cs.Simulated)
	}
	if cs.CacheHits == 0 {
		t.Fatalf("resumed lab stats %+v; the non-checkpointed cells should have come from the cache", cs)
	}
	// No double counting: checkpoint-served cells never enter the cell
	// accounting, so hits + dedup + simulated covers exactly the cache-path
	// requests.
	if total := cs.CacheHits + cs.Deduped() + cs.Simulated + cs.Errors; total != cs.Requests {
		t.Fatalf("stats %+v don't add up: %d accounted of %d requests", cs, total, cs.Requests)
	}
}

// TestLabCacheFaultedCellsResimulate pins the fault exclusion at the lab
// level: with a warm cache, a fault-matched cell still re-simulates on
// every run (its injections are observed each time) and is listed
// exactly once in the degraded summary; the clean cells around it are
// served from the cache.
func TestLabCacheFaultedCellsResimulate(t *testing.T) {
	const spec = "wrf/aqua-sram/1000=refresh-collision@p:0.5"
	store, err := cellcache.New("")
	if err != nil {
		t.Fatal(err)
	}
	render := func() *Lab {
		l := faultedLab(t, spec)
		l.AttachCache(store)
		if _, err := l.Figure9(); err != nil {
			t.Fatalf("figure9 should survive a recovered hardware fault: %v", err)
		}
		return l
	}
	assertFaultedOnce := func(which string, l *Lab) {
		count := 0
		for _, c := range l.FaultedCells() {
			if c.Workload == "wrf" && c.Scheme == SchemeAquaSRAM && c.TRH == 1000 {
				count++
				if c.Injected == 0 {
					t.Fatalf("%s run: degraded cell listed with no injections", which)
				}
			}
		}
		if count != 1 {
			t.Fatalf("%s run: degraded cell listed %d times, want exactly once", which, count)
		}
	}

	assertFaultedOnce("first", render())

	second := render()
	assertFaultedOnce("second", second)
	cs := second.CellStats()
	if cs.CacheHits == 0 {
		t.Fatalf("second run stats %+v; clean cells should be served from the cache", cs)
	}
	if cs.Simulated != 0 {
		t.Fatalf("second run stats %+v; only the faulted cell may simulate, and it bypasses this accounting", cs)
	}
}
