package repro

// Acceptance tests for the fault-injection layer and the resilient
// experiment engine (see DESIGN.md "Failure model & graceful
// degradation"):
//
//   - a lab run with an injected panicking cell completes, reports the
//     panic as a structured *sim.CellError, and renders every figure that
//     doesn't depend on the broken cell byte-identically to the golden
//     file;
//   - a degraded cell (injected hardware fault the scheme recovered from)
//     completes and shows up in FaultedCells;
//   - a run interrupted after partial completion and resumed from its
//     checkpoint reproduces the uninterrupted golden output exactly;
//   - a cancelled lab surfaces the context's error.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/sim"
)

// goldenSections parses the committed golden file into its "=== name ==="
// sections.
func goldenSections(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "lab_golden.txt"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	out := make(map[string]string)
	parts := strings.Split(string(raw), "=== ")
	for _, p := range parts[1:] {
		name, body, ok := strings.Cut(p, " ===\n")
		if !ok {
			t.Fatalf("malformed golden section %q", p[:40])
		}
		out[name] = body
	}
	return out
}

// faultedLab builds the reduced golden lab with fault rules attached.
func faultedLab(t *testing.T, spec string) *Lab {
	t.Helper()
	rules, err := fault.ParseRules(spec)
	if err != nil {
		t.Fatal(err)
	}
	return NewLab(LabOptions{
		Window:        500 * dram.PS(dram.Microsecond),
		Workloads:     []string{"xz", "wrf"},
		NoCalibration: true,
		Parallel:      2,
		Faults:        rules,
	})
}

// TestLabFaultMatrix is the headline acceptance scenario: one injected
// panicking cell plus one injected hardware-fault cell. The run must
// complete, report the panic with full cell identity, flag the degraded
// cell, and leave every untouched renderer byte-identical to the golden
// file.
func TestLabFaultMatrix(t *testing.T) {
	l := faultedLab(t, "xz/rrs/1000=panic@once:0;wrf/aqua-sram/1000=refresh-collision@p:0.5")
	golden := goldenSections(t)

	// Renderers whose grid contains xz/rrs/1000 fail — with the cell named.
	for _, r := range Renderers() {
		switch r.Name {
		case "figure3", "figure6", "figure7", "table6":
			_, err := r.Fn(l)
			var ce *sim.CellError
			if !errors.As(err, &ce) {
				t.Fatalf("%s: got %v, want *sim.CellError", r.Name, err)
			}
			if ce.Workload != "xz" || ce.Scheme != SchemeRRS || ce.TRH != 1000 {
				t.Fatalf("%s failed on cell %s/%s/%d, want xz/rrs/1000", r.Name, ce.Workload, ce.Scheme, ce.TRH)
			}
			if len(ce.Stack) == 0 {
				t.Fatalf("%s: panic CellError carries no stack", r.Name)
			}
		}
	}

	// figure9 contains the degraded (but surviving) wrf/aqua-sram cell: it
	// must complete, and the injection must be visible in the summary.
	if _, err := l.Figure9(); err != nil {
		t.Fatalf("figure9 should survive a recovered hardware fault: %v", err)
	}
	faulted := l.FaultedCells()
	found := false
	for _, c := range faulted {
		if c.Workload == "wrf" && c.Scheme == SchemeAquaSRAM && c.TRH == 1000 && c.Injected > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("FaultedCells() = %+v, want wrf/aqua-sram/1000 listed", faulted)
	}

	// Every renderer whose grid avoids both faulted cells must render
	// byte-identically to the committed golden output.
	for _, r := range Renderers() {
		switch r.Name {
		case "table2", "figure10", "figure11", "table4", "section5f", "section5h":
			out, err := r.Fn(l)
			if err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			if want, ok := golden[r.Name]; !ok {
				t.Fatalf("golden file has no section %q", r.Name)
			} else if out+"\n" != want {
				t.Errorf("%s diverged from golden under unrelated faults:\n%s", r.Name, firstDiff(want, out+"\n"))
			}
		}
	}
}

// TestLabCheckpointResumeGolden: a lab that completed only part of the
// evaluation before stopping, then a fresh lab resumed from the same
// checkpoint, must reproduce the uninterrupted golden byte stream exactly
// — while provably serving the already-done cells from the file.
func TestLabCheckpointResumeGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lab.ckpt")

	// Partial run: two renderers' worth of cells, then stop (standing in
	// for a run killed mid-grid; the checkpoint is synced per cell, so any
	// kill point leaves a valid prefix).
	l1 := labAt(1)
	if err := l1.AttachCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if _, err := l1.Figure7(); err != nil {
		t.Fatal(err)
	}
	if _, err := l1.Figure10(); err != nil {
		t.Fatal(err)
	}
	if err := l1.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// Resumed run: full render from a fresh lab on the same file.
	l2 := labAt(1)
	if err := l2.AttachCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	got, err := renderGoldenLab(l2)
	if err != nil {
		t.Fatal(err)
	}
	if l2.CheckpointHits() == 0 {
		t.Fatalf("resumed lab never hit the checkpoint")
	}
	if err := l2.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile(filepath.Join("testdata", "lab_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("resumed lab output diverged from golden:\n%s", firstDiff(string(want), got))
	}

	// The checkpoint must refuse a lab with different options.
	l3 := NewLab(LabOptions{
		Window:        500 * dram.PS(dram.Microsecond),
		Workloads:     []string{"xz", "wrf"},
		NoCalibration: true,
		Parallel:      1,
		Seed:          0xD15EA5E,
	})
	if err := l3.AttachCheckpoint(path); err == nil {
		t.Fatalf("checkpoint accepted a lab with a different seed")
	}
}

// TestLabCancelledContext: a lab whose context is already done must fail
// fast with the context's error instead of simulating.
func TestLabCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := NewLab(LabOptions{
		Window:        500 * dram.PS(dram.Microsecond),
		Workloads:     []string{"xz", "wrf"},
		NoCalibration: true,
		Parallel:      2,
		Context:       ctx,
	})
	_, err := l.Figure7()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled lab returned %v, want context.Canceled", err)
	}
}

// TestFaultedLabRulesRoundTrip pins the CLI grammar used throughout the
// docs: the canonical string of parsed rules re-parses to the same rules.
func TestFaultedLabRulesRoundTrip(t *testing.T) {
	spec := "xz/rrs/1000=panic@once:0;*/aqua-memmapped/*=ecc-flip@p:0.01"
	rules, err := fault.ParseRules(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := fault.ParseRules(rules.String())
	if err != nil {
		t.Fatal(err)
	}
	if rules.String() != again.String() {
		t.Fatalf("rules did not round-trip: %q vs %q", rules.String(), again.String())
	}
	if fmt.Sprint(rules.PlanFor("xz", "rrs", 1000)) != fmt.Sprint(again.PlanFor("xz", "rrs", 1000)) {
		t.Fatalf("round-tripped rules produce a different plan")
	}
}
