// Package repro is an open-source reproduction of "AQUA: Scalable
// Rowhammer Mitigation by Quarantining Aggressor Rows at Runtime" (Saxena,
// Saileshwar, Nair, Qureshi — MICRO 2022), built as a self-contained Go
// library: a transaction-level DDR4 model, the AQUA mechanism (SRAM and
// memory-mapped table variants), the baselines it is compared against
// (RRS, Blockhammer, victim refresh, CROW), calibrated SPEC-2017 workload
// generators, attack-pattern generators, and the closed-form models of the
// paper's analysis sections.
//
// The root package is the public facade: it re-exports the types needed to
// assemble a protected memory system and provides the Lab, which
// regenerates every table and figure of the paper's evaluation. The
// runnable entry points live in cmd/ (aquasim, figures, attacksim) and
// examples/.
//
// Quick start:
//
//	rank := repro.NewBaselineRank()
//	aqua := repro.NewAqua(rank, repro.AquaConfig{TRH: 1000})
//	ctrl := repro.NewController(rank, aqua)
//	done := ctrl.Submit(repro.Row(12345), false, 0) // read row 12345 at t=0
//
// or, one level up, use the simulation harness:
//
//	run, _ := repro.NewLab(repro.LabOptions{}).Run("lbm", repro.SchemeAquaMemMapped, 1000)
//	fmt.Printf("slowdown: %.1f%%\n", (1/run.NormIPC-1)*100)
package repro

import (
	"repro/internal/blockhammer"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/rrs"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/tracker"
	"repro/internal/vrefresh"
)

// Core DRAM types.
type (
	// Rank is a transaction-level DDR4 rank model.
	Rank = dram.Rank
	// Geometry describes banks/rows/row size of a rank.
	Geometry = dram.Geometry
	// Timing holds the DDR4 timing parameters.
	Timing = dram.Timing
	// Row is a physical row identifier (flat bank-major index).
	Row = dram.Row
	// PS is simulated time in picoseconds.
	PS = dram.PS
)

// Mitigation types.
type (
	// Mitigator is the memory-controller-facing mitigation interface.
	Mitigator = mitigation.Mitigator
	// MitigationStats aggregates a scheme's activity counters.
	MitigationStats = mitigation.Stats
	// AquaConfig parameterizes the AQUA engine.
	AquaConfig = core.Config
	// AquaEngine is the AQUA mitigation engine (the paper's contribution).
	AquaEngine = core.Engine
	// RRSConfig parameterizes the Randomized Row-Swap baseline.
	RRSConfig = rrs.Config
	// BlockhammerConfig parameterizes the rate-limiting baseline.
	BlockhammerConfig = blockhammer.Config
	// VictimRefreshConfig parameterizes the victim-refresh baseline.
	VictimRefreshConfig = vrefresh.Config
	// Controller is the memory controller.
	Controller = memctrl.Controller
	// Tracker is an aggressor-row tracker.
	Tracker = tracker.Tracker
	// SecurityMonitor is the sliding-window Rowhammer oracle.
	SecurityMonitor = security.Monitor
)

// LookupClass classifies how an address translation resolved (Figure 10).
type LookupClass = mitigation.LookupClass

// Lookup classes (Figure 10's categories plus the SRAM/pinned paths).
const (
	LookupNone          = mitigation.LookupNone
	LookupBloomFiltered = mitigation.LookupBloomFiltered
	LookupCacheHit      = mitigation.LookupCacheHit
	LookupSingleton     = mitigation.LookupSingleton
	LookupDRAM          = mitigation.LookupDRAM
	LookupSRAM          = mitigation.LookupSRAM
	LookupPinned        = mitigation.LookupPinned
)

// AQUA table modes.
const (
	// ModeSRAM keeps FPT/RPT in SRAM (Section IV).
	ModeSRAM = core.ModeSRAM
	// ModeMemMapped stores FPT/RPT in DRAM behind a bloom filter and
	// FPT-Cache (Section V).
	ModeMemMapped = core.ModeMemMapped
)

// Simulation schemes (re-exported from internal/sim).
type Scheme = sim.Scheme

// GridCell is one (scheme, threshold) column of an experiment grid, used
// with Lab.Precompute and Runner grids.
type GridCell = sim.GridCell

const (
	SchemeBaseline      = sim.SchemeBaseline
	SchemeAquaSRAM      = sim.SchemeAquaSRAM
	SchemeAquaMemMapped = sim.SchemeAquaMemMapped
	SchemeRRS           = sim.SchemeRRS
	SchemeBlockhammer   = sim.SchemeBlockhammer
	SchemeVictimRefresh = sim.SchemeVictimRefresh
)

// BaselineGeometry returns the paper's 16GB rank: 16 banks x 128K rows x
// 8KB rows (Table I).
func BaselineGeometry() Geometry { return dram.Baseline() }

// DDR4Timing returns the DDR4-2400 timing of Table I.
func DDR4Timing() Timing { return dram.DDR4() }

// NewBaselineRank builds the paper's baseline rank.
func NewBaselineRank() *Rank { return dram.NewRank(dram.Baseline(), dram.DDR4()) }

// NewRank builds a rank with explicit geometry and timing.
func NewRank(g Geometry, t Timing) *Rank { return dram.NewRank(g, t) }

// NewAqua builds an AQUA engine bound to a rank.
func NewAqua(rank *Rank, cfg AquaConfig) *AquaEngine { return core.New(rank, cfg) }

// NewRRS builds a Randomized Row-Swap engine bound to a rank.
func NewRRS(rank *Rank, cfg RRSConfig) Mitigator { return rrs.New(rank, cfg) }

// NewBlockhammer builds a Blockhammer engine bound to a rank.
func NewBlockhammer(rank *Rank, cfg BlockhammerConfig) Mitigator {
	return blockhammer.New(rank, cfg)
}

// NewVictimRefresh builds a victim-refresh engine bound to a rank.
func NewVictimRefresh(rank *Rank, cfg VictimRefreshConfig) Mitigator {
	return vrefresh.New(rank, cfg)
}

// NewController builds a memory controller binding a rank to a mitigation
// scheme (nil = unprotected baseline).
func NewController(rank *Rank, mit Mitigator) *Controller {
	return memctrl.New(rank, mit, memctrl.Config{})
}

// NewSecurityMonitor builds a sliding-window oracle for the given T_RH and
// attaches it to the rank.
func NewSecurityMonitor(rank *Rank, trh int) *SecurityMonitor {
	m := security.NewMonitor(trh, rank.Timing().TREFW)
	m.Attach(rank)
	return m
}
