package repro

// Golden-output check: the byte-for-byte contract every optimization PR
// must preserve. TestLabGolden renders every simulation-backed renderer
// on the reduced grid of parallel_test.go and compares against a
// committed golden file, so a hot-path change that alters *any* simulated
// number — a reordered RNG draw, a different tie-break, a timing skew —
// fails the build instead of silently shifting figures.
//
// The golden file was generated before the allocation-free request
// pipeline landed (PR 3), so it also certifies old-vs-new equivalence of
// that optimization. Regenerate (only when an intentional behaviour
// change is reviewed and understood) with:
//
//	go test -run TestLabGolden -update-golden .

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// renderGolden produces the concatenated renderer output for the reduced
// serial lab.
func renderGolden() (string, error) {
	return renderGoldenLab(labAt(1))
}

// renderGoldenLab renders every registry renderer (render.go — shared
// with the experiment farm and the checkpoint/resume acceptance tests,
// which must reproduce this byte stream) on the given lab.
func renderGoldenLab(l *Lab) (string, error) {
	return RenderAll(l)
}

func TestLabGolden(t *testing.T) {
	got, err := renderGolden()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "lab_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestLabGolden -update-golden .`): %v", err)
	}
	if got != string(want) {
		t.Errorf("renderer output diverged from %s.\n"+
			"If this change is intentional, regenerate with -update-golden and explain the delta in the PR.\n%s",
			path, firstDiff(string(want), got))
	}
}

// firstDiff renders the first differing line with context, keeping the
// failure message readable for multi-kilobyte tables.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first diff at line %d:\n  golden: %q\n  got:    %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d vs got %d", len(wl), len(gl))
}
