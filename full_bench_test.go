// Full-window cell budget: one complete 64ms refresh-window simulation —
// the unit of work every figure grid decomposes into — must stay under a
// wall-clock budget, so grid regeneration time stays bounded as the
// simulator grows. `make bench-full` runs the gated budget test; the
// measured wall-clock is also recorded as wall_full_sec in
// BENCH_<date>.json by `make bench-json`.
package repro

import (
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runFullWindowCell simulates one full 64ms-window cell (lbm under AQUA
// memory-mapped at T_RH=1000, 4 cores) and returns the wall-clock it took.
func runFullWindowCell(tb testing.TB) time.Duration {
	spec, ok := workload.ByName("lbm")
	if !ok {
		tb.Fatal("lbm spec missing")
	}
	cfg := sim.Config{Scheme: sim.SchemeAquaMemMapped, TRH: 1000, Cores: 4, Seed: 0x41515541}
	region := sim.VisibleRegion(cfg)
	window := 64 * dram.Millisecond
	params := workload.Params{EpochLength: dram.DDR4().TREFW, NominalIPC: 0.3, Cores: 4}
	windowInstr := float64(window) / 1e12 * 3e9 * params.NominalIPC
	reqs := int64(windowInstr*spec.MPKI/1000) + 16
	streams := make([]cpu.Stream, 4)
	for i := 0; i < 4; i++ {
		gen := workload.NewGenerator(spec, region, i, cfg.Seed, params)
		streams[i] = gen.Stream(reqs, cfg.Seed+uint64(i)*7919)
	}
	sys := sim.NewSystem(cfg, streams)
	start := time.Now()
	res := sys.Run(0)
	el := time.Since(start)
	tb.Logf("full cell: %s wall, %d requests, simtime %.1fms", el, res.Requests, float64(res.SimTime)/1e9)
	return el
}

// TestFullWindowCellBudget asserts the wall-clock budget for one full
// 64ms-window cell. It only runs with REPRO_BENCH_FULL=1 (set by `make
// bench-full` and the CI benchmark smoke) because wall-clock assertions
// are meaningless on arbitrarily loaded developer machines; the budget
// defaults to 750ms (tightened from 1000ms with the blocked-bank overlap
// scheduler and hot-path flattening) and can be adjusted per host with
// REPRO_BENCH_FULL_BUDGET_MS — CI pins 2000ms to absorb shared-runner
// noise.
func TestFullWindowCellBudget(t *testing.T) {
	if os.Getenv("REPRO_BENCH_FULL") != "1" {
		t.Skip("set REPRO_BENCH_FULL=1 (or run `make bench-full`) to assert the full-cell wall-clock budget")
	}
	budget := 750 * time.Millisecond
	if v := os.Getenv("REPRO_BENCH_FULL_BUDGET_MS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			budget = time.Duration(n) * time.Millisecond
		}
	}
	if el := runFullWindowCell(t); el > budget {
		t.Errorf("full 64ms-window cell took %s, budget %s (REPRO_BENCH_FULL_BUDGET_MS to adjust)", el, budget)
	}
}
